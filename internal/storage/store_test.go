package storage

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"paradise/internal/schema"
)

func sampleRelation() *schema.Relation {
	return schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("n", schema.TypeInt),
		schema.Col("s", schema.TypeString),
	)
}

func TestTableAppendAndSnapshot(t *testing.T) {
	tab := NewTable(sampleRelation())
	if err := tab.Append(
		schema.Row{schema.Float(1), schema.Int(2), schema.String("a")},
		schema.Row{schema.Float(3), schema.Int(4), schema.String("b")},
	); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	snap := tab.Snapshot()
	if err := tab.Append(schema.Row{schema.Float(5), schema.Int(6), schema.String("c")}); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatal("snapshot must be stable after later appends")
	}
}

func TestTableArityValidation(t *testing.T) {
	tab := NewTable(sampleRelation())
	err := tab.Append(schema.Row{schema.Float(1)})
	if !errors.Is(err, ErrArity) {
		t.Fatalf("want ErrArity, got %v", err)
	}
}

func TestTruncate(t *testing.T) {
	tab := NewTable(sampleRelation())
	_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("a")})
	tab.Truncate()
	if tab.Len() != 0 {
		t.Fatal("truncate should empty the table")
	}
}

func TestStoreLookup(t *testing.T) {
	st := NewStore()
	st.Create(sampleRelation())
	if _, err := st.Table("D"); err != nil {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, err := st.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	rel, rows, err := st.Relation("d")
	if err != nil || rel.Name != "d" || len(rows) != 0 {
		t.Fatalf("Relation: %v %v %v", rel, rows, err)
	}
	names := st.Names()
	if len(names) != 1 || names[0] != "d" {
		t.Fatalf("Names = %v", names)
	}
	cat := st.Catalog()
	if _, ok := cat.Lookup("d"); !ok {
		t.Fatal("catalog missing d")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	tab := NewTable(sampleRelation())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("x")})
				_ = tab.Snapshot()
				_ = tab.Len()
			}
		}()
	}
	wg.Wait()
	if tab.Len() != 800 {
		t.Fatalf("len = %d, want 800", tab.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := sampleRelation()
	rows := schema.Rows{
		{schema.Float(1.5), schema.Int(7), schema.String("hello")},
		{schema.Null(), schema.Int(-2), schema.String("with,comma")},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if !got[0][0].Identical(rows[0][0]) || !got[1][2].Identical(rows[1][2]) {
		t.Fatal("values corrupted in round trip")
	}
	if !got[1][0].IsNull() {
		t.Fatal("NULL not preserved")
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	rel := sampleRelation()
	if _, err := ReadCSV(strings.NewReader("x,n\n1,2\n"), rel); err == nil {
		t.Fatal("short header should error")
	}
	if _, err := ReadCSV(strings.NewReader("x,n,wrong\n1,2,a\n"), rel); err == nil {
		t.Fatal("wrong header name should error")
	}
	if _, err := ReadCSV(strings.NewReader("x,n,s\nnotanumber,2,a\n"), rel); err == nil {
		t.Fatal("bad value should error")
	}
}

func TestWireSize(t *testing.T) {
	tab := NewTable(sampleRelation())
	_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("abc")})
	if tab.WireSize() == 0 {
		t.Fatal("non-empty table should have wire size")
	}
}

func scanTable(t *testing.T, n int) *Table {
	t.Helper()
	tab := NewTable(sampleRelation())
	for i := 0; i < n; i++ {
		if err := tab.Append(schema.Row{
			schema.Float(float64(i)), schema.Int(int64(i)), schema.String("r"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestTableScanBatches(t *testing.T) {
	tab := scanTable(t, 10)
	it := tab.Scan(context.Background(), schema.Scan{BatchSize: 4})
	var sizes []int
	total := 0
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, len(b))
		total += len(b)
	}
	if total != 10 || len(sizes) != 3 || sizes[0] != 4 || sizes[2] != 2 {
		t.Fatalf("batches = %v", sizes)
	}
}

func TestTableScanFilterAndProjection(t *testing.T) {
	tab := scanTable(t, 100)
	it := tab.Scan(context.Background(), schema.Scan{
		Columns:   []int{1},
		Filter:    func(r schema.Row) (bool, error) { return r[0].AsFloat() < 10, nil },
		BatchSize: 7,
	})
	rows, err := schema.DrainIterator(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("filter should keep 10 rows, got %d", len(rows))
	}
	for i, r := range rows {
		if len(r) != 1 {
			t.Fatalf("projection should keep 1 column, got %d", len(r))
		}
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d = %v", i, r[0].Format())
		}
	}
}

func TestTableScanStopsEarly(t *testing.T) {
	tab := scanTable(t, 1000)
	it := tab.Scan(context.Background(), schema.Scan{BatchSize: 16})
	b, err := it.Next()
	if err != nil || len(b) != 16 {
		t.Fatalf("first batch: %d rows, err %v", len(b), err)
	}
	it.Close()
	if b2, err := it.Next(); err != nil || b2 != nil {
		t.Fatalf("closed scan must be exhausted, got %d rows, err %v", len(b2), err)
	}
}

func TestTableScanSeesConcurrentAppendsSafely(t *testing.T) {
	tab := scanTable(t, 50)
	it := tab.Scan(context.Background(), schema.Scan{BatchSize: 8})
	first, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := first[0][0].AsFloat()
	// Appends (and even a truncate) must not corrupt already-returned rows.
	_ = tab.Append(schema.Row{schema.Float(999), schema.Int(999), schema.String("late")})
	tab.Truncate()
	if first[0][0].AsFloat() != want {
		t.Fatal("returned batch corrupted by concurrent mutation")
	}
	// The scan terminates cleanly against the truncated table.
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
	}
}

// TestScanHonoursContext: a cancelled context stops a table scan within
// one batch — the bottom of the streaming-cancellation vertical.
func TestScanHonoursContext(t *testing.T) {
	tab := NewTable(schema.NewRelation("s", schema.Col("v", schema.TypeInt)))
	for i := 0; i < 3*schema.DefaultBatchSize; i++ {
		if err := tab.Append(schema.Row{schema.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	it := tab.Scan(ctx, schema.Scan{})
	defer it.Close()

	b, err := it.Next()
	if err != nil || len(b) != schema.DefaultBatchSize {
		t.Fatalf("first batch: %d rows, err %v", len(b), err)
	}
	cancel()
	if _, err := it.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Next = %v, want context.Canceled", err)
	}
}

// TestScanCloseIdempotent: closing a scan twice is safe and final.
func TestScanCloseIdempotent(t *testing.T) {
	tab := NewTable(schema.NewRelation("s", schema.Col("v", schema.TypeInt)))
	for i := 0; i < 10; i++ {
		if err := tab.Append(schema.Row{schema.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	it := tab.Scan(context.Background(), schema.Scan{})
	it.Close()
	it.Close()
	if b, err := it.Next(); b != nil || err != nil {
		t.Fatalf("Next after double Close = %v, %v; want nil, nil", b, err)
	}
}

// TestSchemaEpoch: every DDL operation bumps the epoch exactly once;
// data-path operations (Append, Truncate, scans) never do. Plan caches key
// by the epoch, so these are the exact invalidation rules.
func TestSchemaEpoch(t *testing.T) {
	s := NewStore()
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", s.Epoch())
	}
	tab := s.Create(schema.NewRelation("e", schema.Col("v", schema.TypeInt)))
	if s.Epoch() != 1 {
		t.Fatalf("after Create epoch = %d, want 1", s.Epoch())
	}
	if err := tab.Append(schema.Row{schema.Int(1)}); err != nil {
		t.Fatal(err)
	}
	tab.Truncate()
	it := tab.Scan(context.Background(), schema.Scan{})
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if s.Epoch() != 1 {
		t.Fatalf("data ops moved the epoch to %d, want 1", s.Epoch())
	}
	s.Put(NewTable(schema.NewRelation("f", schema.Col("w", schema.TypeFloat))))
	if s.Epoch() != 2 {
		t.Fatalf("after Put epoch = %d, want 2", s.Epoch())
	}
	s.Drop("missing") // no-op: nothing removed, nothing invalidated
	if s.Epoch() != 2 {
		t.Fatalf("no-op Drop moved the epoch to %d, want 2", s.Epoch())
	}
	s.Drop("F")
	if s.Epoch() != 3 {
		t.Fatalf("after Drop epoch = %d, want 3", s.Epoch())
	}
	if _, err := s.Table("f"); err == nil {
		t.Fatal("dropped table still resolvable")
	}
}
