package storage

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"paradise/internal/schema"
)

func sampleRelation() *schema.Relation {
	return schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("n", schema.TypeInt),
		schema.Col("s", schema.TypeString),
	)
}

func TestTableAppendAndSnapshot(t *testing.T) {
	tab := NewTable(sampleRelation())
	if err := tab.Append(
		schema.Row{schema.Float(1), schema.Int(2), schema.String("a")},
		schema.Row{schema.Float(3), schema.Int(4), schema.String("b")},
	); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	snap := tab.Snapshot()
	if err := tab.Append(schema.Row{schema.Float(5), schema.Int(6), schema.String("c")}); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatal("snapshot must be stable after later appends")
	}
}

func TestTableArityValidation(t *testing.T) {
	tab := NewTable(sampleRelation())
	err := tab.Append(schema.Row{schema.Float(1)})
	if !errors.Is(err, ErrArity) {
		t.Fatalf("want ErrArity, got %v", err)
	}
}

func TestTruncate(t *testing.T) {
	tab := NewTable(sampleRelation())
	_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("a")})
	tab.Truncate()
	if tab.Len() != 0 {
		t.Fatal("truncate should empty the table")
	}
}

func TestStoreLookup(t *testing.T) {
	st := NewStore()
	st.Create(sampleRelation())
	if _, err := st.Table("D"); err != nil {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, err := st.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	rel, rows, err := st.Relation("d")
	if err != nil || rel.Name != "d" || len(rows) != 0 {
		t.Fatalf("Relation: %v %v %v", rel, rows, err)
	}
	names := st.Names()
	if len(names) != 1 || names[0] != "d" {
		t.Fatalf("Names = %v", names)
	}
	cat := st.Catalog()
	if _, ok := cat.Lookup("d"); !ok {
		t.Fatal("catalog missing d")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	tab := NewTable(sampleRelation())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("x")})
				_ = tab.Snapshot()
				_ = tab.Len()
			}
		}()
	}
	wg.Wait()
	if tab.Len() != 800 {
		t.Fatalf("len = %d, want 800", tab.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := sampleRelation()
	rows := schema.Rows{
		{schema.Float(1.5), schema.Int(7), schema.String("hello")},
		{schema.Null(), schema.Int(-2), schema.String("with,comma")},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if !got[0][0].Identical(rows[0][0]) || !got[1][2].Identical(rows[1][2]) {
		t.Fatal("values corrupted in round trip")
	}
	if !got[1][0].IsNull() {
		t.Fatal("NULL not preserved")
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	rel := sampleRelation()
	if _, err := ReadCSV(strings.NewReader("x,n\n1,2\n"), rel); err == nil {
		t.Fatal("short header should error")
	}
	if _, err := ReadCSV(strings.NewReader("x,n,wrong\n1,2,a\n"), rel); err == nil {
		t.Fatal("wrong header name should error")
	}
	if _, err := ReadCSV(strings.NewReader("x,n,s\nnotanumber,2,a\n"), rel); err == nil {
		t.Fatal("bad value should error")
	}
}

func TestWireSize(t *testing.T) {
	tab := NewTable(sampleRelation())
	_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("abc")})
	if tab.WireSize() == 0 {
		t.Fatal("non-empty table should have wire size")
	}
}
