package storage

import (
	"math"

	"paradise/internal/schema"
)

// Segmented storage. A table is a sequence of immutable sealed segments
// plus one mutable active tail: appends grow the tail, and when it reaches
// the configured segment size it is sealed — its vectors become immutable,
// a zone map (per-column min/max, null count, type census, NaN count) and a
// seal-time histogram are computed, and, when the table has a persistent
// backend, the segment is written out and its vectors dropped from memory.
//
// Scans consult the zone maps with the structured pruning predicate
// (schema.ColPred) and skip whole segments before a single batch is
// materialized: a selective scan over time-ordered sensor data touches
// O(matching segments), not O(table). The pruning soundness rule lives
// with zonePrune below; the segmented-vs-monolithic equivalence and fuzz
// suites pin that pruning never changes results.

// DefaultSegmentRows is the seal threshold when the store's configuration
// does not choose one: large enough that zone maps stay cheap relative to
// data, small enough that selective scans skip meaningful fractions.
const DefaultSegmentRows = 4096

// ZoneEntry is one column's zone-map entry for one sealed segment (or, for
// pruning the active tail, a snapshot of its segment-local accumulator).
type ZoneEntry struct {
	// Rows and Nulls count the segment's rows and this column's NULLs.
	Rows, Nulls int64
	// NaNs counts float NaN values: incomparable, so their presence blocks
	// pruning (a comparison over them errors, and errors must surface).
	NaNs int64
	// Numeric range over non-NaN Int/Float values. For Int values the
	// bounds are widened outward by one ulp beyond 2^53 so float64
	// rounding can never move a true value outside [NumMin, NumMax].
	HasNum         bool
	NumMin, NumMax float64
	// String range over String values.
	HasStr         bool
	StrMin, StrMax string
	// Non-null runtime-type census; pruning requires a type-clean segment.
	Ints, Floats, Strs, Bools, Times, Others int64
	// Bytes is the column's cumulative wire size within the segment (used
	// to rebuild table statistics on recovery without decoding columns).
	Bytes int64
}

// zoneEntryOf renders a segment-local accumulator as a zone entry, widening
// int-fed float bounds outward where float64 rounding is inexact.
func zoneEntryOf(c *colStat, rows int64) ZoneEntry {
	z := ZoneEntry{
		Rows:   rows,
		Nulls:  c.nulls,
		NaNs:   c.nans,
		HasNum: c.hasRange,
		NumMin: c.min,
		NumMax: c.max,
		HasStr: c.hasStr,
		StrMin: c.strMin,
		StrMax: c.strMax,
		Ints:   c.ints,
		Floats: c.floats,
		Strs:   c.strs,
		Bools:  c.bools,
		Times:  c.times,
		Others: c.others,
		Bytes:  c.bytes,
	}
	if z.HasNum && z.Ints > 0 {
		z.NumMin = widenLo(z.NumMin)
		z.NumMax = widenHi(z.NumMax)
	}
	return z
}

// exactFloatInt bounds the int64 range within which float64 conversion is
// exact; beyond it bounds are widened by one ulp to stay conservative.
const exactFloatInt = 1 << 53

func widenLo(f float64) float64 {
	if f <= -exactFloatInt {
		return math.Nextafter(f, math.Inf(-1))
	}
	return f
}

func widenHi(f float64) float64 {
	if f >= exactFloatInt {
		return math.Nextafter(f, math.Inf(1))
	}
	return f
}

// litBounds returns a conservative [lo, hi] float64 interval containing a
// numeric literal (exact for floats; outward-widened for large ints).
func litBounds(v schema.Value) (lo, hi float64) {
	if v.Type() == schema.TypeInt {
		i := v.AsInt()
		f := float64(i)
		if i >= exactFloatInt || i <= -exactFloatInt {
			return math.Nextafter(f, math.Inf(-1)), math.Nextafter(f, math.Inf(1))
		}
		return f, f
	}
	f := v.AsFloat()
	return f, f
}

// nonNull counts the entry's non-NULL rows.
func (z ZoneEntry) nonNull() int64 { return z.Rows - z.Nulls }

// allNumeric: every non-null value is Int or Float (NaN floats included in
// the census but flagged separately by NaNs).
func (z ZoneEntry) allNumeric() bool { return z.Ints+z.Floats == z.nonNull() }

// allString: every non-null value is a String.
func (z ZoneEntry) allString() bool { return z.Strs == z.nonNull() }

// segment is one sealed, immutable run of rows. Exactly one of mem / data
// is set: mem holds the vectors (and the row-mirror pivot-elision cache)
// for in-memory segments; data is the backend handle for on-disk segments,
// decoded lazily per scan.
type segment struct {
	rows int
	wire int
	zone []ZoneEntry
	hist []*Histogram

	mem  *segMem
	data SegmentData
}

// segMem is the in-memory representation of a sealed segment.
type segMem struct {
	cols []schema.ColVec
	// view is the row-major mirror (see Table's doc): full-width windows
	// attach it so pivots gather references instead of re-boxing values.
	view schema.Rows
}

// zonePrune decides whether a segment can be skipped for the given
// structured predicate.
//
// The soundness rule, matching the kernel chain's semantics exactly
// (engine/veckernel.go): the segment may be skipped iff some conjunct k is
// provably FALSE for every row of the segment AND every conjunct before k
// is provably total (cannot error) on the segment.
//
//   - FALSE, not just "no match": a NULL comparison result is not FALSE —
//     the row survives as a marked candidate and later conjuncts may error
//     on it. A segment with NULLs in the tested column is therefore never
//     skipped via a comparison conjunct (IS [NOT] NULL excepted, which is
//     always boolean).
//   - Total: a comparison errors on NaN or cross-type operands, and a
//     skipped error is a changed answer. Before pruning on conjunct k,
//     every earlier conjunct must be proven error-free on this segment
//     (type-clean operands, no NaNs, non-NaN literal).
//
// Conjuncts are examined in order and the walk stops at the first conjunct
// that is not provably total — beyond it, evaluation order could surface
// effects pruning would skip.
func zonePrune(preds []schema.ColPred, zone []ZoneEntry) bool {
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(zone) {
			return false // malformed hint: never prune on it
		}
		z := zone[p.Col]
		switch p.Op {
		case schema.PredIsNull:
			if z.Nulls == 0 {
				return true
			}
			continue // total: IS NULL never errors and is never NULL
		case schema.PredNotNull:
			if z.Nulls == z.Rows {
				return true
			}
			continue
		}
		if p.RCol >= 0 {
			if p.RCol >= len(zone) {
				return false
			}
			r := zone[p.RCol]
			if !cmpColsTotal(z, r) {
				return false
			}
			if z.Nulls == 0 && r.Nulls == 0 && rangeDisjointCols(p.Op, z, r) {
				return true
			}
			continue
		}
		if p.Lit.IsNull() {
			// Comparison with NULL literal: NULL for every row — total
			// (never errors), never FALSE. Walk on.
			continue
		}
		switch {
		case p.Lit.Type().Numeric():
			if !z.allNumeric() || z.NaNs > 0 || isNaNLit(p.Lit) {
				return false // possible comparison error: stop
			}
			if z.Nulls == 0 && numDisjoint(p.Op, z, p.Lit) {
				return true
			}
		case p.Lit.Type() == schema.TypeString:
			if !z.allString() {
				return false
			}
			if z.Nulls == 0 && strDisjoint(p.Op, z, p.Lit.AsString()) {
				return true
			}
		case p.Lit.Type() == schema.TypeBool:
			if z.Bools != z.nonNull() {
				return false
			}
			// Boolean ranges are not tracked; total but never prunable.
		case p.Lit.Type() == schema.TypeTime:
			if z.Times != z.nonNull() {
				return false
			}
			// Time ranges are not tracked; total but never prunable.
		default:
			return false
		}
	}
	return false
}

func isNaNLit(v schema.Value) bool {
	return v.Type() == schema.TypeFloat && math.IsNaN(v.AsFloat())
}

// cmpColsTotal reports whether a column-vs-column comparison is provably
// error-free on the segment: both sides type-clean and NaN-free in a
// mutually comparable family.
func cmpColsTotal(l, r ZoneEntry) bool {
	switch {
	case l.allNumeric() && r.allNumeric():
		return l.NaNs == 0 && r.NaNs == 0
	case l.allString() && r.allString():
		return true
	case l.Bools == l.nonNull() && r.Bools == r.nonNull():
		return true
	case l.Times == l.nonNull() && r.Times == r.nonNull():
		return true
	}
	// Also total when either side is entirely NULL (comparison is NULL).
	return l.nonNull() == 0 || r.nonNull() == 0
}

// rangeDisjointCols proves `l OP r` FALSE for every row pair drawn from
// the two columns' ranges. Only numeric and string families have tracked
// ranges; anything else is never prunable.
func rangeDisjointCols(op schema.PredOp, l, r ZoneEntry) bool {
	if l.allNumeric() && r.allNumeric() && l.HasNum && r.HasNum {
		return intervalDisjoint(op, l.NumMin, l.NumMax, r.NumMin, r.NumMax)
	}
	if l.allString() && r.allString() && l.HasStr && r.HasStr {
		if cmpDisjointStr(op, l.StrMin, l.StrMax, r.StrMin, r.StrMax) {
			return true
		}
	}
	return false
}

// intervalDisjoint proves `x OP y` false for all x in [lmin, lmax] and all
// y in [rmin, rmax].
func intervalDisjoint(op schema.PredOp, lmin, lmax, rmin, rmax float64) bool {
	switch op {
	case schema.PredEq:
		return lmax < rmin || lmin > rmax
	case schema.PredNe:
		return lmin == lmax && rmin == rmax && lmin == rmin
	case schema.PredLt:
		return lmin >= rmax
	case schema.PredLe:
		return lmin > rmax
	case schema.PredGt:
		return lmax <= rmin
	case schema.PredGe:
		return lmax < rmin
	}
	return false
}

func cmpDisjointStr(op schema.PredOp, lmin, lmax, rmin, rmax string) bool {
	switch op {
	case schema.PredEq:
		return lmax < rmin || lmin > rmax
	case schema.PredNe:
		return lmin == lmax && rmin == rmax && lmin == rmin
	case schema.PredLt:
		return lmin >= rmax
	case schema.PredLe:
		return lmin > rmax
	case schema.PredGt:
		return lmax <= rmin
	case schema.PredGe:
		return lmax < rmin
	}
	return false
}

// numDisjoint proves `col OP lit` FALSE for every row of the segment.
// Callers have established: all non-null values numeric, no NaNs, no
// NULLs, non-NaN literal — so the comparison is total and boolean, and the
// conservative interval test below is the whole truth.
func numDisjoint(op schema.PredOp, z ZoneEntry, lit schema.Value) bool {
	if !z.HasNum {
		return false // no numeric values at all (empty segment guard)
	}
	litLo, litHi := litBounds(lit)
	switch op {
	case schema.PredEq:
		return litHi < z.NumMin || litLo > z.NumMax
	case schema.PredNe:
		// Only when the whole segment provably equals the literal exactly.
		return z.NumMin == z.NumMax && litLo == litHi && z.NumMin == litLo
	case schema.PredLt:
		return z.NumMin >= litHi
	case schema.PredLe:
		return z.NumMin > litHi
	case schema.PredGt:
		return z.NumMax <= litLo
	case schema.PredGe:
		return z.NumMax < litLo
	}
	return false
}

// strDisjoint is numDisjoint for string columns (exact, no widening).
func strDisjoint(op schema.PredOp, z ZoneEntry, lit string) bool {
	if !z.HasStr {
		return false
	}
	return cmpDisjointStr(op, z.StrMin, z.StrMax, lit, lit)
}

// SealedSegment is the payload handed to a Backend at seal time: the
// immutable column vectors plus everything the footer must persist — zone
// maps, histograms, NDV sketches and the relation schema — to make
// recovery stats-exact (and schema-complete) without decoding columns.
type SealedSegment struct {
	Rows     int
	Wire     int
	Rel      *schema.Relation
	Cols     []schema.ColVec
	Zone     []ZoneEntry
	Hists    []*Histogram
	Sketches [][]uint64
}

// SegmentData is a lazily decodable sealed segment held by a backend.
// Implementations must be safe for concurrent Load calls.
type SegmentData interface {
	// Load decodes the selected columns (nil cols = every column in schema
	// order) and returns them in the requested order, each vector holding
	// the segment's full row count. Unselected columns are never decoded.
	Load(cols []int) ([]schema.ColVec, error)
}

// RecoveredSegment is one sealed segment surfaced by Backend.RecoverAll.
type RecoveredSegment struct {
	Rows     int
	Wire     int
	Zone     []ZoneEntry
	Hists    []*Histogram
	Sketches [][]uint64
	Data     SegmentData
}

// RecoveredTable is one table's recovered state: the schema (from the
// segment footers) and the sealed segments in seal order.
type RecoveredTable struct {
	Rel      *schema.Relation
	Segments []*RecoveredSegment
}

// Backend persists sealed segments. It is deliberately narrow: storage
// owns segmentation, zone maps and pruning; a backend only has to write a
// sealed segment durably, hand it back lazily, recover the sealed prefix
// after a restart, and drop a table's segments.
//
// Backends must tolerate concurrent Load calls on returned SegmentData;
// Seal and Drop are always invoked under the owning table's (or store's)
// lock, and RecoverAll once, before the store is shared.
type Backend interface {
	// Seal durably stores one sealed segment (seq is its 0-based position
	// in the table's segment sequence) and returns the lazy handle scans
	// will read it through.
	Seal(table string, seq int, seg *SealedSegment) (SegmentData, error)
	// RecoverAll returns every previously sealed table, segments in seal
	// order. A partially written trailing segment must be discarded (clean
	// truncation to the last sealed segment), never surfaced.
	RecoverAll() ([]*RecoveredTable, error)
	// Drop removes every sealed segment of the table.
	Drop(table string) error
}
