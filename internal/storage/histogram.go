package storage

import (
	"math"

	"paradise/internal/schema"
)

// Equi-width histograms over numeric columns, built once per segment at
// seal time (one pass over the sealed vectors — rows the seal already
// owns) and merged on demand into the table-level statistics snapshot.
// The estimator uses them for range selectivities, replacing the uniform
// min/max interpolation that is ~3x off on skewed or correlated data (see
// the modeled-vs-measured golden table).

// histBuckets is the bucket count of every histogram. Small enough that a
// footer full of histograms stays negligible next to the column data,
// large enough to resolve the skew the uniform model misses.
const histBuckets = 32

// Histogram is an equi-width bucket count over [Min, Max]: bucket i spans
// [Min + i*w, Min + (i+1)*w) with w = (Max-Min)/len(Counts), the last
// bucket closed on the right. NaNs and NULLs are never counted.
type Histogram struct {
	Min, Max float64
	Counts   []int64
}

// Total sums the bucket counts.
func (h *Histogram) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// bucketOf maps a value into a bucket index, clamping the edges.
func (h *Histogram) bucketOf(f float64) int {
	if len(h.Counts) == 0 || h.Max <= h.Min {
		return 0
	}
	i := int(float64(len(h.Counts)) * (f - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// FracBelow estimates the fraction of counted values strictly below v,
// interpolating linearly inside the boundary bucket. Exactly 0 below Min
// and 1 above Max.
func (h *Histogram) FracBelow(v float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if v <= h.Min {
		return 0
	}
	if v >= h.Max {
		if h.Max <= h.Min {
			return 1
		}
		if v > h.Max {
			return 1
		}
	}
	if h.Max <= h.Min {
		// Single-point histogram: all mass at Min.
		if v > h.Min {
			return 1
		}
		return 0
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	b := h.bucketOf(v)
	var below int64
	for i := 0; i < b; i++ {
		below += h.Counts[i]
	}
	lo := h.Min + float64(b)*w
	frac := (v - lo) / w
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return (float64(below) + frac*float64(h.Counts[b])) / float64(total)
}

// buildHist bins one sealed column vector into a fresh histogram over
// [z.NumMin, z.NumMax]. Returns nil when the column has no finite numeric
// values to count (the estimator then falls back to the uniform model).
func buildHist(v *schema.ColVec, n int, z ZoneEntry) *Histogram {
	if !z.HasNum {
		return nil
	}
	h := &Histogram{Min: z.NumMin, Max: z.NumMax, Counts: make([]int64, histBuckets)}
	binHist(h, v, n)
	return h
}

// binHist folds rows [0, n) of the vector into the histogram. Non-numeric
// values, NULLs and NaNs are skipped.
func binHist(h *Histogram, v *schema.ColVec, n int) {
	for i := 0; i < n; i++ {
		if v.Null(i) {
			continue
		}
		var f float64
		if !v.Boxed() {
			switch v.Typ {
			case schema.TypeInt:
				f = float64(v.Ints[i])
			case schema.TypeFloat:
				f = v.Floats[i]
			default:
				return // typed non-numeric vector: nothing to bin
			}
		} else {
			val := v.Box[i]
			if !val.Type().Numeric() {
				continue
			}
			f = val.AsFloat()
		}
		if math.IsNaN(f) {
			continue
		}
		h.Counts[h.bucketOf(f)]++
	}
}

// mergeHist resamples a source histogram onto the target's range,
// distributing each source bucket's count over the target buckets it
// overlaps proportionally by width. Conservative (mass-preserving), not
// exact — the price of equi-width buckets with moving table-level ranges.
func mergeHist(dst, src *Histogram) {
	if src == nil || src.Total() == 0 {
		return
	}
	if dst.Max <= dst.Min {
		// Degenerate target: everything lands in bucket 0.
		dst.Counts[0] += src.Total()
		return
	}
	dw := (dst.Max - dst.Min) / float64(len(dst.Counts))
	if src.Max <= src.Min {
		dst.Counts[dst.bucketOf(src.Min)] += src.Total()
		return
	}
	sw := (src.Max - src.Min) / float64(len(src.Counts))
	for i, c := range src.Counts {
		if c == 0 {
			continue
		}
		lo := src.Min + float64(i)*sw
		hi := lo + sw
		// Distribute c over dst buckets overlapping [lo, hi).
		bLo := dst.bucketOf(lo)
		bHi := dst.bucketOf(math.Nextafter(hi, lo)) // hi exclusive
		if bHi < bLo {
			bHi = bLo
		}
		if bLo == bHi {
			dst.Counts[bLo] += c
			continue
		}
		rem := c
		for b := bLo; b <= bHi && rem > 0; b++ {
			tLo := dst.Min + float64(b)*dw
			tHi := tLo + dw
			oLo := math.Max(lo, tLo)
			oHi := math.Min(hi, tHi)
			if oHi <= oLo {
				continue
			}
			share := int64(math.Round(float64(c) * (oHi - oLo) / sw))
			if share > rem || b == bHi {
				share = rem
			}
			dst.Counts[b] += share
			rem -= share
		}
	}
}

// mergedHistLocked builds the table-level histogram for column i: sealed
// segments' seal-time histograms resampled onto the table's current
// [min, max], plus the active tail binned on demand (bounded by the
// segment size). Caller holds at least a read lock.
func (t *Table) mergedHistLocked(i int, cs ColumnStats) *Histogram {
	if !cs.HasRange {
		return nil
	}
	out := &Histogram{Min: cs.Min, Max: cs.Max, Counts: make([]int64, histBuckets)}
	any := false
	for _, seg := range t.sealed {
		if i < len(seg.hist) && seg.hist[i] != nil {
			mergeHist(out, seg.hist[i])
			any = true
		}
	}
	if t.tailRows > 0 {
		z := zoneEntryOf(&t.segStats[i], int64(t.tailRows))
		if z.HasNum {
			binHist(out, &t.cols[i], t.tailRows)
			any = true
		}
	}
	if !any || out.Total() == 0 {
		return nil
	}
	return out
}
