package storage

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"

	"paradise/internal/schema"
)

func morselStore(t *testing.T, n int) *Table {
	t.Helper()
	st := NewStore()
	tab := st.Create(schema.NewRelation("m",
		schema.Col("i", schema.TypeInt)))
	rows := make(schema.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, schema.Row{schema.Int(int64(i))})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestScanMorselsPartition: concurrent workers pulling from one morsel
// source cover the table exactly once — every row served to exactly one
// worker, seqs contiguous.
func TestScanMorselsPartition(t *testing.T) {
	const n = 1000
	tab := morselStore(t, n)
	src := tab.ScanMorsels(context.Background(), 64)

	var mu sync.Mutex
	got := make(map[int64]int)
	seqs := make(map[int]bool)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := src.NextMorsel()
				if err != nil || m.Rows == nil {
					return
				}
				mu.Lock()
				seqs[m.Seq] = true
				for _, r := range m.Rows {
					got[r[0].AsInt()]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(got) != n {
		t.Fatalf("workers saw %d distinct rows, want %d", len(got), n)
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("row %d served %d times", v, c)
		}
	}
	for s := 0; s < len(seqs); s++ {
		if !seqs[s] {
			t.Fatalf("seq %d missing (non-contiguous morsel numbering)", s)
		}
	}
}

// TestScanMorselsCancellation: after ctx cancel, the shared cursor hands
// out no further morsels — an error is delivered exactly once and every
// other worker observes exhaustion.
func TestScanMorselsCancellation(t *testing.T) {
	tab := morselStore(t, 10_000)
	ctx, cancel := context.WithCancel(context.Background())
	src := tab.ScanMorsels(ctx, 256)

	if m, err := src.NextMorsel(); err != nil || len(m.Rows) != 256 {
		t.Fatalf("first morsel: rows=%d err=%v", len(m.Rows), err)
	}
	cancel()

	var errCount, doneCount int
	for i := 0; i < 4; i++ {
		m, err := src.NextMorsel()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			errCount++
			continue
		}
		if m.Rows != nil {
			t.Fatalf("morsel served after cancel")
		}
		doneCount++
	}
	if errCount != 1 || doneCount != 3 {
		t.Fatalf("want exactly one error delivery then exhaustion, got %d errors / %d done", errCount, doneCount)
	}
}

// TestScanPartitions: the partitioned Table.Scan applies filter and
// projection per partition and the union of all partitions equals the
// serial scan's row set.
func TestScanPartitions(t *testing.T) {
	tab := morselStore(t, 500)
	sc := schema.Scan{
		Filter: func(r schema.Row) (bool, error) { return r[0].AsInt()%2 == 0, nil },
	}
	want, err := schema.DrainIterator(tab.Scan(context.Background(), sc))
	if err != nil {
		t.Fatal(err)
	}

	parts := tab.ScanPartitions(context.Background(), sc, 3)
	var mu sync.Mutex
	var union schema.Rows
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p schema.RowIterator) {
			defer wg.Done()
			rows, err := schema.DrainIterator(p)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			union = append(union, rows...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	if len(union) != len(want) {
		t.Fatalf("partitions produced %d rows, serial scan %d", len(union), len(want))
	}
	sort.Slice(union, func(i, j int) bool { return union[i][0].AsInt() < union[j][0].AsInt() })
	for i := range want {
		if union[i][0].AsInt() != want[i][0].AsInt() {
			t.Fatalf("row %d: got %v, want %v", i, union[i], want[i])
		}
	}
}
