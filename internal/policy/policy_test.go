package policy

import (
	"errors"
	"strings"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

func TestFigure4Policy(t *testing.T) {
	p := Figure4()
	m, ok := p.ModuleByID("ActionFilter")
	if !ok {
		t.Fatal("ActionFilter module missing")
	}
	if len(m.Attributes) != 4 {
		t.Fatalf("want 4 attributes, got %d", len(m.Attributes))
	}

	x, ok := m.Attribute("x")
	if !ok || !x.Allow || len(x.Conditions) != 1 || x.Conditions[0].SQL() != "x > y" {
		t.Fatalf("x rule wrong: %+v", x)
	}
	y, _ := m.Attribute("y")
	if !y.Allow || len(y.Conditions) != 0 || y.Aggregation != nil {
		t.Fatalf("y rule wrong: %+v", y)
	}
	z, _ := m.Attribute("z")
	if !z.Allow || len(z.Conditions) != 1 || z.Conditions[0].SQL() != "z < 2" {
		t.Fatalf("z conditions wrong: %+v", z)
	}
	if z.Aggregation == nil || z.Aggregation.Type != "avg" {
		t.Fatalf("z aggregation wrong: %+v", z.Aggregation)
	}
	if len(z.Aggregation.GroupBy) != 2 || z.Aggregation.GroupBy[0] != "x" || z.Aggregation.GroupBy[1] != "y" {
		t.Fatalf("z group-by wrong: %v", z.Aggregation.GroupBy)
	}
	if z.Aggregation.Having == nil || z.Aggregation.Having.SQL() != "SUM(z) > 100" {
		t.Fatalf("z having wrong: %v", z.Aggregation.Having)
	}
	if z.AliasFor() != "zAVG" {
		t.Fatalf("alias = %q", z.AliasFor())
	}
	if !m.Allowed("t") || m.Allowed("user") {
		t.Fatal("allow flags wrong")
	}
}

func TestModuleHelpers(t *testing.T) {
	m, _ := Figure4().ModuleByID("actionfilter") // case-insensitive
	if m == nil {
		t.Fatal("case-insensitive module lookup")
	}
	denied := m.DeniedOf([]string{"x", "user", "tag_id"})
	if len(denied) != 2 {
		t.Fatalf("denied = %v", denied)
	}
	conds := m.Conditions()
	if len(conds) != 2 {
		t.Fatalf("conditions = %d", len(conds))
	}
}

func TestParseBareModuleAndPolicyRoot(t *testing.T) {
	bare := `<module module_ID="m1"><attributeList>
		<attribute name="a"><allow>true</allow></attribute>
	</attributeList></module>`
	p, err := ParseBytes([]byte(bare))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != 1 || p.Modules[0].ID != "m1" {
		t.Fatalf("bare module parse: %+v", p)
	}

	wrapped := `<policy>
		<module module_ID="m1"><attributeList>
			<attribute name="a"><allow>true</allow></attribute>
		</attributeList></module>
		<module module_ID="m2"><attributeList>
			<attribute name="b"><allow>false</allow></attribute>
		</attributeList></module>
	</policy>`
	p, err = ParseBytes([]byte(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != 2 {
		t.Fatalf("want 2 modules, got %d", len(p.Modules))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := Figure4()
	p.Modules[0].Stream = &StreamRules{MinQueryIntervalMs: 1000, MinAggregationWindowMs: 60000}
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseBytes(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	m, _ := p2.ModuleByID("ActionFilter")
	z, _ := m.Attribute("z")
	if z.Aggregation == nil || z.Aggregation.Having.SQL() != "SUM(z) > 100" {
		t.Fatal("aggregation lost in round trip")
	}
	if m.Stream == nil || m.Stream.MinQueryIntervalMs != 1000 {
		t.Fatal("stream rules lost in round trip")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []string{
		// unparseable condition
		`<module module_ID="m"><attributeList>
			<attribute name="a"><allow>true</allow>
			<condition><atomicCondition>a >></atomicCondition></condition>
			</attribute></attributeList></module>`,
		// unknown aggregation type
		`<module module_ID="m"><attributeList>
			<attribute name="a"><allow>true</allow>
			<aggregation><aggregationType>FOO</aggregationType></aggregation>
			</attribute></attributeList></module>`,
		// group-by references denied attribute
		`<module module_ID="m"><attributeList>
			<attribute name="a"><allow>true</allow>
			<aggregation><aggregationType>AVG</aggregationType><groupBy>b</groupBy></aggregation>
			</attribute>
			<attribute name="b"><allow>false</allow></attribute>
			</attributeList></module>`,
		// duplicate attribute
		`<module module_ID="m"><attributeList>
			<attribute name="a"><allow>true</allow></attribute>
			<attribute name="a"><allow>true</allow></attribute>
			</attributeList></module>`,
		// missing module id
		`<module><attributeList>
			<attribute name="a"><allow>true</allow></attribute>
			</attributeList></module>`,
		// denied attribute with conditions
		`<module module_ID="m"><attributeList>
			<attribute name="a"><allow>false</allow>
			<condition><atomicCondition>a &gt; 1</atomicCondition></condition>
			</attribute></attributeList></module>`,
	}
	for i, doc := range cases {
		if _, err := ParseBytes([]byte(doc)); !errors.Is(err, ErrPolicy) {
			t.Errorf("case %d: want ErrPolicy, got %v", i, err)
		}
	}
}

func TestDefaultModule(t *testing.T) {
	rel := schema.NewRelation("ubisense",
		schema.SensitiveCol("tag_id", schema.TypeInt),
		schema.Col("x", schema.TypeFloat),
	)
	m := DefaultModule("ubisense", rel)
	if m.Allowed("tag_id") {
		t.Fatal("sensitive column should default to denied")
	}
	if !m.Allowed("x") {
		t.Fatal("plain column should default to allowed")
	}
}

func TestAdaptAddsNewAttributes(t *testing.T) {
	m, _ := Figure4().ModuleByID("ActionFilter")
	rel := schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("humidity", schema.TypeFloat),
		schema.SensitiveCol("user", schema.TypeString),
	)
	out := Adapt(m, rel)
	if !out.Allowed("humidity") {
		t.Fatal("new plain column should be allowed")
	}
	if out.Allowed("user") {
		t.Fatal("new sensitive column should be denied")
	}
	// Existing rules untouched.
	z, _ := out.Attribute("z")
	if z.Aggregation == nil {
		t.Fatal("existing aggregation lost")
	}
	// Input unchanged.
	if _, ok := m.Attribute("humidity"); ok {
		t.Fatal("Adapt mutated its input")
	}
}

func TestMergeStrictestWins(t *testing.T) {
	mkModule := func(allowA bool, condA string) *Module {
		m := &Module{ID: "m", Attributes: []*Attribute{
			{Name: "a", Allow: allowA},
			{Name: "b", Allow: true},
		}}
		if condA != "" {
			e, err := sqlparser.ParseExpr(condA)
			if err != nil {
				t.Fatal(err)
			}
			m.Attributes[0].Conditions = []sqlparser.Expr{e}
		}
		return m
	}
	// allow ∧ deny = deny
	out := Merge(mkModule(true, ""), mkModule(false, ""))
	if out.Allowed("a") {
		t.Fatal("merge should deny when either denies")
	}
	// conditions union
	out = Merge(mkModule(true, "a > 1"), mkModule(true, "a < 9"))
	a, _ := out.Attribute("a")
	if len(a.Conditions) != 2 {
		t.Fatalf("conditions = %v", a.Conditions)
	}
	// duplicate conditions dedupe
	out = Merge(mkModule(true, "a > 1"), mkModule(true, "a > 1"))
	a, _ = out.Attribute("a")
	if len(a.Conditions) != 1 {
		t.Fatalf("dedupe failed: %v", a.Conditions)
	}
}

func TestMergeAggregationAndStream(t *testing.T) {
	a := &Module{ID: "m", Attributes: []*Attribute{
		{Name: "z", Allow: true, Aggregation: &Aggregation{Type: "avg", GroupBy: []string{"x"}}},
		{Name: "x", Allow: true},
		{Name: "y", Allow: true},
	}, Stream: &StreamRules{MinQueryIntervalMs: 500}}
	b := &Module{ID: "m", Attributes: []*Attribute{
		{Name: "z", Allow: true, Aggregation: &Aggregation{Type: "avg", GroupBy: []string{"x", "y"}}},
		{Name: "x", Allow: true},
		{Name: "y", Allow: true},
	}, Stream: &StreamRules{MinQueryIntervalMs: 1000}}
	out := Merge(a, b)
	z, _ := out.Attribute("z")
	if len(z.Aggregation.GroupBy) != 2 {
		t.Fatal("coarser aggregation (larger group-by) should win")
	}
	if out.Stream.MinQueryIntervalMs != 1000 {
		t.Fatal("stricter stream interval should win")
	}
}

func TestGenerateForCatalog(t *testing.T) {
	cat := schema.NewCatalog()
	cat.Register(schema.NewRelation("a", schema.Col("v", schema.TypeInt)))
	cat.Register(schema.NewRelation("b", schema.SensitiveCol("w", schema.TypeString)))
	p := GenerateForCatalog(cat)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != 2 {
		t.Fatalf("modules = %d", len(p.Modules))
	}
	mb, _ := p.ModuleByID("b")
	if mb.Allowed("w") {
		t.Fatal("sensitive defaults to denied")
	}
}

func TestMarshalContainsFigure4Shape(t *testing.T) {
	data, err := Marshal(Figure4())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"ActionFilter", "attributeList", "aggregationType", "AVG", "SUM(z) &gt; 100"} {
		if !strings.Contains(s, want) {
			t.Errorf("marshalled policy lacks %q:\n%s", want, s)
		}
	}
}
