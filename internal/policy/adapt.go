package policy

import (
	"sort"
	"strings"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// This file implements the paper's "module for the automatic generation of
// privacy settings" (§3): it produces default policies for new devices and
// adapts existing user-defined policies to changed schemas and queries.

// DefaultModule generates a privacy module for a relation: attributes
// flagged Sensitive in the schema are denied, everything else is allowed
// without conditions. This is the conservative default applied when a new
// device joins the ensemble and the user has not configured it yet.
func DefaultModule(id string, rel *schema.Relation) *Module {
	m := &Module{ID: id}
	for _, c := range rel.Columns {
		m.Attributes = append(m.Attributes, &Attribute{Name: c.Name, Allow: !c.Sensitive})
	}
	return m
}

// Adapt extends a module to cover a (possibly grown) relation schema: new
// attributes get the conservative default, existing rules are kept
// untouched. The returned module is a deep copy; the input is not modified.
func Adapt(m *Module, rel *schema.Relation) *Module {
	out := cloneModule(m)
	for _, c := range rel.Columns {
		if _, ok := out.Attribute(c.Name); !ok {
			out.Attributes = append(out.Attributes, &Attribute{Name: c.Name, Allow: !c.Sensitive})
		}
	}
	return out
}

// Merge combines two modules for the same analysis, strictest-wins: an
// attribute is allowed only if both allow it; conditions are unioned
// (conjunctive, so more conditions = stricter); of two mandated
// aggregations the one with the larger group-by set (coarser disclosure
// control) wins, ties broken toward a's.
func Merge(a, b *Module) *Module {
	out := &Module{ID: a.ID}
	names := map[string]bool{}
	var order []string
	for _, at := range append(append([]*Attribute{}, a.Attributes...), b.Attributes...) {
		if !names[at.Name] {
			names[at.Name] = true
			order = append(order, at.Name)
		}
	}
	for _, n := range order {
		aa, aok := a.Attribute(n)
		ba, bok := b.Attribute(n)
		switch {
		case aok && bok:
			na := &Attribute{Name: n, Allow: aa.Allow && ba.Allow}
			if na.Allow {
				na.Conditions = append(cloneExprs(aa.Conditions), cloneExprs(ba.Conditions)...)
				na.Conditions = dedupeExprs(na.Conditions)
				na.Aggregation = mergeAggregation(aa.Aggregation, ba.Aggregation)
				// Coarser (larger) compression grid is stricter.
				na.CompressionGrid = aa.CompressionGrid
				if ba.CompressionGrid > na.CompressionGrid {
					na.CompressionGrid = ba.CompressionGrid
				}
			}
			out.Attributes = append(out.Attributes, na)
		case aok:
			out.Attributes = append(out.Attributes, cloneAttribute(aa))
		default:
			out.Attributes = append(out.Attributes, cloneAttribute(ba))
		}
	}
	out.Stream = mergeStream(a.Stream, b.Stream)
	return out
}

func mergeAggregation(a, b *Aggregation) *Aggregation {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		return cloneAggregation(b)
	case b == nil:
		return cloneAggregation(a)
	case len(b.GroupBy) > len(a.GroupBy):
		return cloneAggregation(b)
	default:
		return cloneAggregation(a)
	}
}

func mergeStream(a, b *StreamRules) *StreamRules {
	if a == nil && b == nil {
		return nil
	}
	out := &StreamRules{}
	if a != nil {
		*out = *a
	}
	if b != nil {
		if b.MinQueryIntervalMs > out.MinQueryIntervalMs {
			out.MinQueryIntervalMs = b.MinQueryIntervalMs
		}
		if b.MinAggregationWindowMs > out.MinAggregationWindowMs {
			out.MinAggregationWindowMs = b.MinAggregationWindowMs
		}
	}
	return out
}

// GenerateForCatalog builds a policy with one default module per relation in
// the catalog, module IDs matching relation names.
func GenerateForCatalog(cat *schema.Catalog) *Policy {
	p := &Policy{}
	names := cat.Names()
	sort.Strings(names)
	for _, n := range names {
		rel, _ := cat.Lookup(n)
		p.Modules = append(p.Modules, DefaultModule(n, rel))
	}
	return p
}

func cloneModule(m *Module) *Module {
	out := &Module{ID: m.ID}
	for _, a := range m.Attributes {
		out.Attributes = append(out.Attributes, cloneAttribute(a))
	}
	if m.Stream != nil {
		s := *m.Stream
		out.Stream = &s
	}
	return out
}

func cloneAttribute(a *Attribute) *Attribute {
	return &Attribute{
		Name:            a.Name,
		Allow:           a.Allow,
		Conditions:      cloneExprs(a.Conditions),
		Aggregation:     cloneAggregation(a.Aggregation),
		CompressionGrid: a.CompressionGrid,
	}
}

func cloneAggregation(ag *Aggregation) *Aggregation {
	if ag == nil {
		return nil
	}
	out := &Aggregation{Type: ag.Type, GroupBy: append([]string{}, ag.GroupBy...)}
	out.Having = sqlparser.CloneExpr(ag.Having)
	return out
}

func cloneExprs(es []sqlparser.Expr) []sqlparser.Expr {
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.CloneExpr(e)
	}
	return out
}

func dedupeExprs(es []sqlparser.Expr) []sqlparser.Expr {
	seen := map[string]bool{}
	var out []sqlparser.Expr
	for _, e := range es {
		k := strings.ToLower(e.SQL())
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}
