// Package policy implements the user-defined privacy policies of Grunert &
// Heuer (§3.3, Figure 4): a P3P-inspired XML dialect that — per analysis
// module and per attribute — states whether the attribute may be revealed,
// under which atomic conditions, and whether it must be aggregated (with
// mandatory GROUP BY and HAVING safeguards). Beyond the W3C P3P draft the
// dialect adds stream settings: the allowed query interval and the possible
// aggregation levels (§3.3).
package policy
