package policy

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"paradise/internal/sqlparser"
)

// ErrPolicy wraps all policy validation errors.
var ErrPolicy = errors.New("policy: invalid policy")

// Policy is a set of modules, one per analysis functionality (the paper's
// example module is "ActionFilter" for the activity-recognition filter).
type Policy struct {
	Modules []*Module
}

// Module holds the per-attribute rules for one analysis module.
type Module struct {
	// ID names the analysis functionality the rules apply to.
	ID string
	// Attributes lists the rules per attribute. Attributes not listed are
	// denied (data-minimization default).
	Attributes []*Attribute
	// Stream carries the stream-specific settings (allowed query interval,
	// aggregation level) that the paper adds over P3P.
	Stream *StreamRules
}

// Attribute is the rule set for one attribute of the queried data.
type Attribute struct {
	// Name of the attribute, lower-cased.
	Name string
	// Allow: when false the attribute must not appear in any result.
	Allow bool
	// Conditions are atomic conditions that must hold for every revealed
	// tuple (conjunctively merged into the innermost WHERE/HAVING).
	Conditions []sqlparser.Expr
	// Aggregation, when set, restricts the attribute to aggregated form.
	Aggregation *Aggregation
	// CompressionGrid, when positive, reveals the attribute only snapped
	// to a grid of this width — the "compression" record modification of
	// §3.3 (e.g. 0.25 releases positions at 25 cm resolution).
	CompressionGrid float64
}

// Aggregation mandates that an attribute may only be revealed aggregated.
type Aggregation struct {
	// Type is the aggregate function (AVG in Figure 4), lower-cased.
	Type string
	// GroupBy are the attributes the aggregation must be grouped by.
	GroupBy []string
	// Having is an additional guard on each grouping set (Figure 4:
	// SUM(z) > 100 ensures enough values enter each average).
	Having sqlparser.Expr
}

// StreamRules carries the data-stream extensions of §3.3.
type StreamRules struct {
	// MinQueryIntervalMs is the minimum time between consecutive queries
	// of the module against the stream; 0 means unrestricted.
	MinQueryIntervalMs int64
	// MinAggregationWindowMs is the smallest window over which stream
	// values may be aggregated before leaving the sensor; 0 means raw
	// values may leave.
	MinAggregationWindowMs int64
}

// ModuleByID finds a module.
func (p *Policy) ModuleByID(id string) (*Module, bool) {
	for _, m := range p.Modules {
		if strings.EqualFold(m.ID, id) {
			return m, true
		}
	}
	return nil, false
}

// Attribute finds the rule for an attribute name; found=false means the
// attribute is not mentioned and therefore denied.
func (m *Module) Attribute(name string) (*Attribute, bool) {
	name = strings.ToLower(name)
	for _, a := range m.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Allowed reports whether the attribute may appear (in any form).
func (m *Module) Allowed(name string) bool {
	a, ok := m.Attribute(name)
	return ok && a.Allow
}

// DeniedOf returns the attributes of the given list that the module denies.
func (m *Module) DeniedOf(names []string) []string {
	var out []string
	for _, n := range names {
		if !m.Allowed(n) {
			out = append(out, n)
		}
	}
	return out
}

// Fingerprint returns a stable identity of the policy's rule content: two
// policies whose modules, attributes, conditions, aggregation mandates,
// compression grids and stream rules are equal share a fingerprint, and any
// rule difference changes it. Plan caches use it as the policy component of
// their keys, so sessions with different policies never share a prepared
// plan even for identical SQL.
//
// The fingerprint is a hash of the canonical XML rendering (the same
// surface Parse reads), so it is insensitive to pointer identity and to
// how the policy was constructed.
func (p *Policy) Fingerprint() string {
	data, err := Marshal(p)
	if err != nil {
		// Marshal of these plain structs cannot fail in practice; if it
		// ever does, fall back to pointer identity, which can only split
		// cache entries, never alias two different policies.
		return fmt.Sprintf("unfingerprintable:%p", p)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Conditions returns every atomic condition of every allowed attribute,
// in declaration order. These are the conjuncts the rewriter injects.
func (m *Module) Conditions() []sqlparser.Expr {
	var out []sqlparser.Expr
	for _, a := range m.Attributes {
		if !a.Allow {
			continue
		}
		out = append(out, a.Conditions...)
	}
	return out
}

// Validate checks structural soundness: non-empty IDs and names, known
// aggregation types, parseable conditions are guaranteed by construction
// (they are parsed during load), group-by attributes must be allowed.
func (p *Policy) Validate() error {
	if len(p.Modules) == 0 {
		return fmt.Errorf("%w: no modules", ErrPolicy)
	}
	seen := map[string]bool{}
	for _, m := range p.Modules {
		if m.ID == "" {
			return fmt.Errorf("%w: module without module_ID", ErrPolicy)
		}
		if seen[strings.ToLower(m.ID)] {
			return fmt.Errorf("%w: duplicate module %q", ErrPolicy, m.ID)
		}
		seen[strings.ToLower(m.ID)] = true
		if err := m.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) validate() error {
	names := map[string]bool{}
	for _, a := range m.Attributes {
		if a.Name == "" {
			return fmt.Errorf("%w: module %s has attribute without name", ErrPolicy, m.ID)
		}
		if names[a.Name] {
			return fmt.Errorf("%w: module %s lists attribute %q twice", ErrPolicy, m.ID, a.Name)
		}
		names[a.Name] = true
		if a.Aggregation != nil {
			ag := a.Aggregation
			if !sqlparser.AggregateFunctions[ag.Type] {
				return fmt.Errorf("%w: module %s attribute %s: unknown aggregation type %q",
					ErrPolicy, m.ID, a.Name, ag.Type)
			}
			for _, g := range ag.GroupBy {
				ga, ok := m.Attribute(g)
				if !ok || !ga.Allow {
					return fmt.Errorf("%w: module %s attribute %s: group-by attribute %q is not allowed by the policy",
						ErrPolicy, m.ID, a.Name, g)
				}
			}
		}
		if !a.Allow && (len(a.Conditions) > 0 || a.Aggregation != nil || a.CompressionGrid != 0) {
			return fmt.Errorf("%w: module %s attribute %s: denied attributes cannot carry conditions, aggregations or compression",
				ErrPolicy, m.ID, a.Name)
		}
		if a.CompressionGrid < 0 {
			return fmt.Errorf("%w: module %s attribute %s: negative compression grid",
				ErrPolicy, m.ID, a.Name)
		}
	}
	if m.Stream != nil {
		if m.Stream.MinQueryIntervalMs < 0 || m.Stream.MinAggregationWindowMs < 0 {
			return fmt.Errorf("%w: module %s: negative stream intervals", ErrPolicy, m.ID)
		}
	}
	return nil
}

// AliasFor derives the output alias the rewriter gives a mandated
// aggregation: Figure 4 turns AVG over z into zAVG.
func (a *Attribute) AliasFor() string {
	if a.Aggregation == nil {
		return a.Name
	}
	return a.Name + strings.ToUpper(a.Aggregation.Type)
}
