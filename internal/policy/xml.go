package policy

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"paradise/internal/sqlparser"
)

// The wire format mirrors Figure 4 of the paper:
//
//	<module module_ID="ActionFilter">
//	  <attributeList>
//	    <attribute name="z">
//	      <allow>true</allow>
//	      <condition><atomicCondition>z&lt;2</atomicCondition></condition>
//	      <aggregation>
//	        <aggregationType>AVG</aggregationType>
//	        <groupBy>x, y</groupBy>
//	        <having>SUM(z)&gt;100</having>
//	      </aggregation>
//	    </attribute>
//	  </attributeList>
//	</module>
//
// Multiple modules are wrapped in a <policy> root; a single bare <module>
// document (as printed in the paper) is accepted too.

type xmlPolicy struct {
	XMLName xml.Name    `xml:"policy"`
	Modules []xmlModule `xml:"module"`
}

type xmlModule struct {
	XMLName xml.Name       `xml:"module"`
	ID      string         `xml:"module_ID,attr"`
	Attrs   []xmlAttribute `xml:"attributeList>attribute"`
	Stream  *xmlStream     `xml:"stream"`
}

type xmlAttribute struct {
	Name        string          `xml:"name,attr"`
	Allow       bool            `xml:"allow"`
	Conditions  []xmlCondition  `xml:"condition"`
	Aggregation *xmlAggregation `xml:"aggregation"`
	Compression float64         `xml:"compression,omitempty"`
}

type xmlCondition struct {
	Atomic []string `xml:"atomicCondition"`
}

type xmlAggregation struct {
	Type    string `xml:"aggregationType"`
	GroupBy string `xml:"groupBy"`
	Having  string `xml:"having"`
}

type xmlStream struct {
	MinQueryIntervalMs     int64 `xml:"minQueryIntervalMs"`
	MinAggregationWindowMs int64 `xml:"minAggregationWindowMs"`
}

// Parse reads a policy document. Both a <policy> root with multiple modules
// and a single bare <module> (Figure 4's form) are accepted. The parsed
// policy is validated before being returned.
func Parse(r io.Reader) (*Policy, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	return ParseBytes(data)
}

// ParseBytes parses a policy from memory.
func ParseBytes(data []byte) (*Policy, error) {
	trimmed := strings.TrimSpace(string(data))
	var mods []xmlModule
	if strings.HasPrefix(trimmed, "<policy") {
		var doc xmlPolicy
		if err := xml.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPolicy, err)
		}
		mods = doc.Modules
	} else {
		var m xmlModule
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPolicy, err)
		}
		mods = []xmlModule{m}
	}
	p := &Policy{}
	for _, xm := range mods {
		m, err := fromXMLModule(xm)
		if err != nil {
			return nil, err
		}
		p.Modules = append(p.Modules, m)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func fromXMLModule(xm xmlModule) (*Module, error) {
	m := &Module{ID: xm.ID}
	for _, xa := range xm.Attrs {
		a := &Attribute{
			Name:            strings.ToLower(strings.TrimSpace(xa.Name)),
			Allow:           xa.Allow,
			CompressionGrid: xa.Compression,
		}
		for _, cond := range xa.Conditions {
			for _, atomic := range cond.Atomic {
				atomic = strings.TrimSpace(atomic)
				if atomic == "" {
					continue
				}
				e, err := sqlparser.ParseExpr(atomic)
				if err != nil {
					return nil, fmt.Errorf("%w: module %s attribute %s: bad atomic condition %q: %v",
						ErrPolicy, xm.ID, a.Name, atomic, err)
				}
				a.Conditions = append(a.Conditions, e)
			}
		}
		if xa.Aggregation != nil {
			ag := &Aggregation{Type: strings.ToLower(strings.TrimSpace(xa.Aggregation.Type))}
			for _, g := range strings.Split(xa.Aggregation.GroupBy, ",") {
				g = strings.ToLower(strings.TrimSpace(g))
				if g != "" {
					ag.GroupBy = append(ag.GroupBy, g)
				}
			}
			if h := strings.TrimSpace(xa.Aggregation.Having); h != "" {
				e, err := sqlparser.ParseExpr(h)
				if err != nil {
					return nil, fmt.Errorf("%w: module %s attribute %s: bad having %q: %v",
						ErrPolicy, xm.ID, a.Name, h, err)
				}
				ag.Having = e
			}
			a.Aggregation = ag
		}
		m.Attributes = append(m.Attributes, a)
	}
	if xm.Stream != nil {
		m.Stream = &StreamRules{
			MinQueryIntervalMs:     xm.Stream.MinQueryIntervalMs,
			MinAggregationWindowMs: xm.Stream.MinAggregationWindowMs,
		}
	}
	return m, nil
}

// Marshal renders the policy back to XML (round-trippable through Parse).
func Marshal(p *Policy) ([]byte, error) {
	doc := xmlPolicy{}
	for _, m := range p.Modules {
		xm := xmlModule{ID: m.ID}
		for _, a := range m.Attributes {
			xa := xmlAttribute{Name: a.Name, Allow: a.Allow, Compression: a.CompressionGrid}
			for _, c := range a.Conditions {
				xa.Conditions = append(xa.Conditions, xmlCondition{Atomic: []string{c.SQL()}})
			}
			if a.Aggregation != nil {
				xa.Aggregation = &xmlAggregation{
					Type:    strings.ToUpper(a.Aggregation.Type),
					GroupBy: strings.Join(a.Aggregation.GroupBy, ", "),
				}
				if a.Aggregation.Having != nil {
					xa.Aggregation.Having = a.Aggregation.Having.SQL()
				}
			}
			xm.Attrs = append(xm.Attrs, xa)
		}
		if m.Stream != nil {
			xm.Stream = &xmlStream{
				MinQueryIntervalMs:     m.Stream.MinQueryIntervalMs,
				MinAggregationWindowMs: m.Stream.MinAggregationWindowMs,
			}
		}
		doc.Modules = append(doc.Modules, xm)
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("policy: marshal: %w", err)
	}
	return out, nil
}

// Figure4 returns the exact policy printed in Figure 4 of the paper: the
// ActionFilter module with x (allowed, x>y), y (allowed), z (allowed, z<2,
// AVG grouped by x,y having SUM(z)>100) and t (allowed).
func Figure4() *Policy {
	const doc = `
<module module_ID="ActionFilter">
  <attributeList>
    <attribute name="x">
      <allow>true</allow>
      <condition><atomicCondition>x&gt;y</atomicCondition></condition>
    </attribute>
    <attribute name="y">
      <allow>true</allow>
    </attribute>
    <attribute name="z">
      <allow>true</allow>
      <condition><atomicCondition>z&lt;2</atomicCondition></condition>
      <aggregation>
        <aggregationType>AVG</aggregationType>
        <groupBy>x, y</groupBy>
        <having>SUM(z)&gt;100</having>
      </aggregation>
    </attribute>
    <attribute name="t">
      <allow>true</allow>
    </attribute>
  </attributeList>
</module>`
	p, err := ParseBytes([]byte(doc))
	if err != nil {
		// The embedded document is a constant; failing to parse it is a
		// programming error, not a runtime condition.
		panic("policy: embedded Figure 4 policy invalid: " + err.Error())
	}
	return p
}
