package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknownColumn is returned when a column lookup fails.
var ErrUnknownColumn = errors.New("schema: unknown column")

// Column describes one attribute of a relation.
type Column struct {
	// Name is the attribute name, lower-cased by convention.
	Name string
	// Type is the declared type of the attribute.
	Type Type
	// Sensitive marks attributes that carry direct personal references
	// (used by quasi-identifier detection in the postprocessor).
	Sensitive bool
}

// Relation is an ordered list of columns describing a table, stream or
// intermediate query result.
type Relation struct {
	// Name is the relation name; empty for anonymous intermediate results.
	Name    string
	Columns []Column
}

// NewRelation builds a relation from (name, type) pairs.
func NewRelation(name string, cols ...Column) *Relation {
	return &Relation{Name: name, Columns: cols}
}

// Col is a convenience constructor for Column.
func Col(name string, t Type) Column { return Column{Name: strings.ToLower(name), Type: t} }

// SensitiveCol constructs a column flagged as personally identifying.
func SensitiveCol(name string, t Type) Column {
	return Column{Name: strings.ToLower(name), Type: t, Sensitive: true}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Columns) }

// Index returns the position of the named column, or an error. Lookup is
// case-insensitive, matching SQL identifier semantics.
func (r *Relation) Index(name string) (int, error) {
	name = strings.ToLower(name)
	for i, c := range r.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %q in %s", ErrUnknownColumn, name, r.describe())
}

// Has reports whether the relation has the named column.
func (r *Relation) Has(name string) bool {
	_, err := r.Index(name)
	return err == nil
}

// ColumnNames returns the names in declaration order.
func (r *Relation) ColumnNames() []string {
	out := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy with an optional new name.
func (r *Relation) Clone(name string) *Relation {
	cols := make([]Column, len(r.Columns))
	copy(cols, r.Columns)
	return &Relation{Name: name, Columns: cols}
}

func (r *Relation) describe() string {
	if r.Name != "" {
		return r.Name
	}
	return "(" + strings.Join(r.ColumnNames(), ", ") + ")"
}

// String renders the schema as "name(a BIGINT, b DOUBLE)".
func (r *Relation) String() string {
	parts := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return r.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Row is one tuple. Rows are positional; the Relation gives names and types.
type Row []Value

// Clone copies the row.
func (w Row) Clone() Row {
	out := make(Row, len(w))
	copy(out, w)
	return out
}

// WireSize is the simulated serialized size of the row in bytes.
func (w Row) WireSize() int {
	n := 2 // length prefix
	for _, v := range w {
		n += v.WireSize()
	}
	return n
}

// AppendGroupKey appends the canonical grouping keys of the selected
// column positions to dst. The per-value keys are self-delimiting (see
// Value.AppendGroupKey), so the concatenation is unambiguous without
// separators. This is the allocation-free key builder the hashed operators
// use; GroupKey remains as the legacy human-readable form.
func (w Row) AppendGroupKey(dst []byte, idx []int) []byte {
	for _, i := range idx {
		dst = w[i].AppendGroupKey(dst)
	}
	return dst
}

// GroupKey concatenates the group keys of selected column positions.
func (w Row) GroupKey(idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(w[i].GroupKey())
		b.WriteByte(0x1f)
	}
	return b.String()
}

// Rows is a slice of tuples with helpers used across the engine.
type Rows []Row

// WireSize sums the wire size of all rows.
func (rs Rows) WireSize() int {
	n := 0
	for _, r := range rs {
		n += r.WireSize()
	}
	return n
}

// Clone deep-copies all rows.
func (rs Rows) Clone() Rows {
	out := make(Rows, len(rs))
	for i, r := range rs {
		out[i] = r.Clone()
	}
	return out
}

// Catalog maps relation names to schemas and is consulted by the planner,
// the rewriter and the fragmenter.
type Catalog struct {
	relations map[string]*Relation
}

// NewCatalog builds an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{relations: make(map[string]*Relation)}
}

// Register adds or replaces a relation schema.
func (c *Catalog) Register(r *Relation) {
	c.relations[strings.ToLower(r.Name)] = r
}

// Lookup finds a relation schema by name.
func (c *Catalog) Lookup(name string) (*Relation, bool) {
	r, ok := c.relations[strings.ToLower(name)]
	return r, ok
}

// MustLookup finds a relation schema by name and panics when it is absent.
// Use only for relations the caller just registered.
func (c *Catalog) MustLookup(name string) *Relation {
	r, ok := c.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("schema: relation %q not in catalog", name))
	}
	return r
}

// Names returns the sorted relation names.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.relations))
	for n := range c.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
