package schema

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// keyColGen draws one random value. mode picks a uniform type (so the column
// stays typed) or, when mixed, any type (so the column degrades to boxed
// storage mid-append). NULLs appear in every mode.
func keyColGen(rng *rand.Rand, mode int) Value {
	if rng.Intn(6) == 0 {
		return Null()
	}
	kind := mode
	if mode < 0 {
		kind = rng.Intn(5)
	}
	switch kind {
	case 0:
		return Int(int64(rng.Intn(7) - 3))
	case 1:
		switch rng.Intn(6) {
		case 0:
			return Float(math.NaN())
		case 1:
			return Float(math.Copysign(0, -1))
		case 2:
			return Float(math.Inf(1))
		default:
			return Float(float64(rng.Intn(9)-4) / 2)
		}
	case 2:
		return String([]string{"", "a", "b", "ab", "a\x00b"}[rng.Intn(5)])
	case 3:
		return Bool(rng.Intn(2) == 0)
	default:
		return Time(time.Unix(int64(rng.Intn(3)), int64(rng.Intn(2))))
	}
}

// TestKeyColCompareMatchesCompareForSort is the comparator-equivalence fuzz:
// for random columns — uniformly typed and deliberately mixed (boxed) —
// KeyCol.Compare(i, j) must agree with CompareForSort on every pair,
// including NaN, -0.0, infinities, NULLs and cross-type pairs. The sorts
// built on KeyCol are only correct because of this pairwise identity.
func TestKeyColCompareMatchesCompareForSort(t *testing.T) {
	rng := rand.New(rand.NewSource(20160316))
	for round := 0; round < 120; round++ {
		mode := round%6 - 1 // -1 = mixed, else one uniform type per round
		n := 2 + rng.Intn(30)
		vals := make([]Value, n)
		var kc KeyCol
		for i := range vals {
			vals[i] = keyColGen(rng, mode)
			kc.Append(vals[i])
		}
		if kc.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, kc.Len(), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := kc.Compare(i, j), CompareForSort(vals[i], vals[j]); got != want {
					t.Fatalf("round %d: Compare(%d,%d) = %d, CompareForSort(%s, %s) = %d",
						round, i, j, got, vals[i].Format(), vals[j].Format(), want)
				}
			}
		}
		wantNaN := false
		for _, v := range vals {
			if v.Type() == TypeFloat && math.IsNaN(v.AsFloat()) {
				wantNaN = true
			}
		}
		if kc.HasNaN() != wantNaN {
			t.Fatalf("round %d: HasNaN = %v, want %v", round, kc.HasNaN(), wantNaN)
		}
	}
}

// TestKeyColLeadingNulls pins the deferred-typing backfill: a column whose
// first non-NULL value arrives late must still compare its leading NULLs as
// NULLs, not as the payload zero value.
func TestKeyColLeadingNulls(t *testing.T) {
	var kc KeyCol
	kc.Append(Null())
	kc.Append(Null())
	kc.Append(Int(0)) // payload zero — must stay distinct from NULL
	kc.Append(Int(-1))
	if kc.Compare(0, 1) != 0 {
		t.Fatal("NULL vs NULL != 0")
	}
	if kc.Compare(0, 2) >= 0 {
		t.Fatal("NULL must sort before Int(0)")
	}
	if kc.Compare(2, 3) <= 0 {
		t.Fatal("Int(0) vs Int(-1) ordered wrong")
	}
}
