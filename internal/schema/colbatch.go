package schema

import "time"

// This file is the columnar half of the batch vocabulary: relations stored
// column-major as typed vectors, scanned as ColBatches carrying a selection
// vector, and pivoted back to row-major Rows at the boundary of operators
// that are not vectorized yet. The row-major RowIterator contract in
// iterator.go stays the compatibility surface — every columnar producer can
// serve rows by pivoting, so consumers convert operator by operator.
//
// Layout decisions, and why:
//
//   - One typed payload slice per vector ([]int64, []float64, []string,
//     []bool, []time.Time), selected by Typ. Kernels loop over unboxed
//     machine values instead of 6-field Value structs.
//   - NULLs are a []bool mask (byte per row), not a packed bitmap. Vectors
//     are append-only and scans hand out zero-copy windows of them; a packed
//     bitmap shares its last partial word between the appender and every
//     open window, which is a data race the moment ingestion and scanning
//     overlap. A byte mask has the same append-only safety as the payload
//     slices. Nulls == nil means "no NULL anywhere", so the common all-dense
//     case costs nothing.
//   - A vector whose column was declared one type but received a value of
//     another (legal for derived results; Value carries its own runtime tag)
//     falls back to boxed storage: the whole vector moves to Box []Value and
//     round-trips exactly. Kernels treat boxed vectors with the generic
//     Value-based loop, so correctness never depends on the fast layout.
//
// Ownership rules (the columnar analogue of the morsel contract in
// parallel.go):
//
//   - A ColBatch handed out by a scan is a read-only window over storage:
//     consumers must never append to or mutate its vectors. Refining the
//     selection means allocating a new Sel, not editing vectors.
//   - The batch header and Sel are owned by the consumer that pulled the
//     batch; payload slices may alias storage and stay valid because the
//     underlying vectors are append-only (existing elements are never
//     overwritten, truncation replaces whole vectors).
//   - Rows produced by pivoting are fresh allocations and follow the
//     row-iterator contract: immutable once emitted, retainable forever.

// ColVec is one typed column vector. Exactly one payload slice is active,
// chosen by Typ — unless Box is non-nil, in which case the vector has
// degraded to boxed row values (heterogeneous column) and the typed slices
// are unused.
type ColVec struct {
	// Typ is the declared element type of the vector.
	Typ Type
	// Typed payloads; only the one matching Typ is used.
	Bools  []bool
	Ints   []int64
	Floats []float64
	Strs   []string
	Times  []time.Time
	// Nulls marks NULL positions. nil means the vector holds no NULLs.
	Nulls []bool
	// Box, when non-nil, holds every element as a boxed Value and overrides
	// the typed payloads entirely. A vector degrades to Box on the first
	// append whose runtime type differs from Typ (NULL excepted).
	Box []Value
}

// NewColVec returns an empty vector for the given declared type. Types
// without a dedicated payload (TypeNull columns, which derived relations
// can legally declare) start out boxed.
func NewColVec(t Type) ColVec {
	v := ColVec{Typ: t}
	switch t {
	case TypeBool, TypeInt, TypeFloat, TypeString, TypeTime:
	default:
		v.Box = []Value{}
	}
	return v
}

// Boxed reports whether the vector stores boxed Values instead of a typed
// payload.
func (v *ColVec) Boxed() bool { return v.Box != nil }

// Len returns the number of elements.
func (v *ColVec) Len() int {
	if v.Box != nil {
		return len(v.Box)
	}
	switch v.Typ {
	case TypeBool:
		return len(v.Bools)
	case TypeInt:
		return len(v.Ints)
	case TypeFloat:
		return len(v.Floats)
	case TypeString:
		return len(v.Strs)
	case TypeTime:
		return len(v.Times)
	default:
		return 0
	}
}

// Append adds one value. A NULL appends to the mask; a value of the
// declared type appends to the typed payload; anything else degrades the
// whole vector to boxed storage so the value round-trips exactly.
func (v *ColVec) Append(val Value) {
	if v.Box != nil {
		v.Box = append(v.Box, val)
		return
	}
	if val.typ == TypeNull {
		if v.Nulls == nil {
			v.Nulls = make([]bool, v.Len())
		}
		v.Nulls = append(v.Nulls, true)
		v.appendZero()
		return
	}
	if val.typ != v.Typ {
		v.boxAll()
		v.Box = append(v.Box, val)
		return
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
	switch v.Typ {
	case TypeBool:
		v.Bools = append(v.Bools, val.b)
	case TypeInt:
		v.Ints = append(v.Ints, val.i)
	case TypeFloat:
		v.Floats = append(v.Floats, val.f)
	case TypeString:
		v.Strs = append(v.Strs, val.s)
	case TypeTime:
		v.Times = append(v.Times, val.t)
	}
}

// appendZero grows the active payload by one zero element (the slot behind
// a NULL mask entry).
func (v *ColVec) appendZero() {
	switch v.Typ {
	case TypeBool:
		v.Bools = append(v.Bools, false)
	case TypeInt:
		v.Ints = append(v.Ints, 0)
	case TypeFloat:
		v.Floats = append(v.Floats, 0)
	case TypeString:
		v.Strs = append(v.Strs, "")
	case TypeTime:
		v.Times = append(v.Times, time.Time{})
	}
}

// boxAll converts the typed payload into boxed Values in place.
func (v *ColVec) boxAll() {
	n := v.Len()
	box := make([]Value, n)
	for i := 0; i < n; i++ {
		box[i] = v.Value(i)
	}
	v.Box = box
	v.Bools, v.Ints, v.Floats, v.Strs, v.Times, v.Nulls = nil, nil, nil, nil, nil, nil
}

// Value boxes the element at position i.
func (v *ColVec) Value(i int) Value {
	if v.Box != nil {
		return v.Box[i]
	}
	if v.Nulls != nil && v.Nulls[i] {
		return Value{}
	}
	switch v.Typ {
	case TypeBool:
		return Value{typ: TypeBool, b: v.Bools[i]}
	case TypeInt:
		return Value{typ: TypeInt, i: v.Ints[i]}
	case TypeFloat:
		return Value{typ: TypeFloat, f: v.Floats[i]}
	case TypeString:
		return Value{typ: TypeString, s: v.Strs[i]}
	case TypeTime:
		return Value{typ: TypeTime, t: v.Times[i]}
	default:
		return Value{}
	}
}

// Null reports whether the element at position i is NULL.
func (v *ColVec) Null(i int) bool {
	if v.Box != nil {
		return v.Box[i].typ == TypeNull
	}
	return v.Nulls != nil && v.Nulls[i]
}

// AppendGroupKey appends the canonical grouping key of element i, identical
// to Value.AppendGroupKey on the boxed element (pinned by tests). Columnar
// DISTINCT/GROUP BY/join hashing use it to build keys without boxing.
func (v *ColVec) AppendGroupKey(dst []byte, i int) []byte {
	if v.Box != nil {
		return v.Box[i].AppendGroupKey(dst)
	}
	if v.Nulls != nil && v.Nulls[i] {
		return AppendNullGroupKey(dst)
	}
	switch v.Typ {
	case TypeBool:
		return AppendBoolGroupKey(dst, v.Bools[i])
	case TypeInt:
		return AppendIntGroupKey(dst, v.Ints[i])
	case TypeFloat:
		return AppendFloatGroupKey(dst, v.Floats[i])
	case TypeString:
		return AppendStringGroupKey(dst, v.Strs[i])
	case TypeTime:
		return AppendTimeGroupKey(dst, v.Times[i])
	default:
		return append(dst, '?')
	}
}

// Window returns a read-only sub-vector covering positions [lo, hi). The
// payloads alias the receiver; callers must not append to the result.
func (v *ColVec) Window(lo, hi int) ColVec {
	out := ColVec{Typ: v.Typ}
	if v.Box != nil {
		out.Box = v.Box[lo:hi]
		return out
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	switch v.Typ {
	case TypeBool:
		out.Bools = v.Bools[lo:hi]
	case TypeInt:
		out.Ints = v.Ints[lo:hi]
	case TypeFloat:
		out.Floats = v.Floats[lo:hi]
	case TypeString:
		out.Strs = v.Strs[lo:hi]
	case TypeTime:
		out.Times = v.Times[lo:hi]
	}
	return out
}

// Fill pivots the vector into a row-major destination: element k of the
// selection (or physical position k when sel is nil) is written to
// dst[k*stride]. NULL positions are skipped — dst slots start as zero
// Values, which are NULL already.
func (v *ColVec) Fill(dst []Value, stride, n int, sel []int) {
	if v.Box != nil {
		if sel == nil {
			for i := 0; i < n; i++ {
				dst[i*stride] = v.Box[i]
			}
		} else {
			for k, i := range sel {
				dst[k*stride] = v.Box[i]
			}
		}
		return
	}
	nulls := v.Nulls
	switch v.Typ {
	case TypeBool:
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls == nil || !nulls[i] {
					dst[i*stride] = Value{typ: TypeBool, b: v.Bools[i]}
				}
			}
		} else {
			for k, i := range sel {
				if nulls == nil || !nulls[i] {
					dst[k*stride] = Value{typ: TypeBool, b: v.Bools[i]}
				}
			}
		}
	case TypeInt:
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls == nil || !nulls[i] {
					dst[i*stride] = Value{typ: TypeInt, i: v.Ints[i]}
				}
			}
		} else {
			for k, i := range sel {
				if nulls == nil || !nulls[i] {
					dst[k*stride] = Value{typ: TypeInt, i: v.Ints[i]}
				}
			}
		}
	case TypeFloat:
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls == nil || !nulls[i] {
					dst[i*stride] = Value{typ: TypeFloat, f: v.Floats[i]}
				}
			}
		} else {
			for k, i := range sel {
				if nulls == nil || !nulls[i] {
					dst[k*stride] = Value{typ: TypeFloat, f: v.Floats[i]}
				}
			}
		}
	case TypeString:
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls == nil || !nulls[i] {
					dst[i*stride] = Value{typ: TypeString, s: v.Strs[i]}
				}
			}
		} else {
			for k, i := range sel {
				if nulls == nil || !nulls[i] {
					dst[k*stride] = Value{typ: TypeString, s: v.Strs[i]}
				}
			}
		}
	case TypeTime:
		if sel == nil {
			for i := 0; i < n; i++ {
				if nulls == nil || !nulls[i] {
					dst[i*stride] = Value{typ: TypeTime, t: v.Times[i]}
				}
			}
		} else {
			for k, i := range sel {
				if nulls == nil || !nulls[i] {
					dst[k*stride] = Value{typ: TypeTime, t: v.Times[i]}
				}
			}
		}
	}
}

// Gather is Fill for arbitrary gather lists: element k of sel is written to
// dst[k*stride]. Unlike Fill's selection vectors, sel may repeat indices
// (one probe row matching many build rows) and may contain -1, which leaves
// the slot as the zero Value — SQL NULL — for left-join null extension.
// NULL source positions are likewise skipped.
func (v *ColVec) Gather(dst []Value, stride int, sel []int) {
	if v.Box != nil {
		for k, i := range sel {
			if i >= 0 {
				dst[k*stride] = v.Box[i]
			}
		}
		return
	}
	nulls := v.Nulls
	switch v.Typ {
	case TypeBool:
		for k, i := range sel {
			if i >= 0 && (nulls == nil || !nulls[i]) {
				dst[k*stride] = Value{typ: TypeBool, b: v.Bools[i]}
			}
		}
	case TypeInt:
		for k, i := range sel {
			if i >= 0 && (nulls == nil || !nulls[i]) {
				dst[k*stride] = Value{typ: TypeInt, i: v.Ints[i]}
			}
		}
	case TypeFloat:
		for k, i := range sel {
			if i >= 0 && (nulls == nil || !nulls[i]) {
				dst[k*stride] = Value{typ: TypeFloat, f: v.Floats[i]}
			}
		}
	case TypeString:
		for k, i := range sel {
			if i >= 0 && (nulls == nil || !nulls[i]) {
				dst[k*stride] = Value{typ: TypeString, s: v.Strs[i]}
			}
		}
	case TypeTime:
		for k, i := range sel {
			if i >= 0 && (nulls == nil || !nulls[i]) {
				dst[k*stride] = Value{typ: TypeTime, t: v.Times[i]}
			}
		}
	}
}

// ColBatch is one unit of columnar data flow: a set of equally long column
// vectors plus an optional selection vector restricting which physical rows
// are live. N is the physical row count of the vectors; Sel, when non-nil,
// lists live physical row indices in ascending order (Sel == nil means all
// N rows are live).
type ColBatch struct {
	// Rel describes the columns; Rel.Columns[i] corresponds to Vecs[i].
	Rel *Relation
	// Vecs are the column vectors, all of length N.
	Vecs []ColVec
	// N is the physical (pre-selection) row count.
	N int
	// Sel is the selection vector: live physical row indices, ascending.
	// nil selects all N rows.
	Sel []int
	// View, when non-nil, is a row-major view of the same physical rows:
	// View[i] equals the pivot of physical row i, for all N rows. Producers
	// that already hold row-major data (the store mirrors full-width rows)
	// attach it so Rows() gathers row references instead of pivoting —
	// Value is a wide struct, and re-materializing it per element is the
	// dominant cost of a wide scan. View rows follow the row-iterator
	// retention contract (immutable, retainable), and a producer must only
	// set View when it aligns with Vecs exactly: same width, same order,
	// View[i][c] == Vecs[c].Value(i).
	View Rows
}

// Len returns the live (selected) row count.
func (b *ColBatch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Rows pivots the live rows into row-major form. The result is freshly
// allocated (one backing array for all values) and follows the row-iterator
// retention contract; it is never nil, so an empty pivot is Rows{}.
func (b *ColBatch) Rows() Rows {
	n := b.Len()
	out := make(Rows, n)
	if n == 0 {
		return out
	}
	if b.View != nil {
		// Gather references to the row-major view: no values move.
		if b.Sel == nil {
			copy(out, b.View[:n])
		} else {
			for k, i := range b.Sel {
				out[k] = b.View[i]
			}
		}
		return out
	}
	w := len(b.Vecs)
	vals := make([]Value, n*w)
	for i := range out {
		out[i] = Row(vals[i*w : (i+1)*w : (i+1)*w])
	}
	for c := range b.Vecs {
		b.Vecs[c].Fill(vals[c:], w, b.N, b.Sel)
	}
	return out
}

// RowAt pivots the single physical row i (ignoring Sel) into a fresh Row,
// or returns the view row when one is attached.
func (b *ColBatch) RowAt(i int) Row {
	if b.View != nil {
		return b.View[i]
	}
	out := make(Row, len(b.Vecs))
	for c := range b.Vecs {
		out[c] = b.Vecs[c].Value(i)
	}
	return out
}

// BatchFromRows builds a columnar batch from row-major data, declaring
// column types from rel. Values whose runtime type differs from the
// declared type degrade that vector to boxed storage, so the round trip
// through Rows() is exact for arbitrary input.
func BatchFromRows(rel *Relation, rows Rows) *ColBatch {
	vecs := make([]ColVec, rel.Arity())
	for i := range vecs {
		vecs[i] = NewColVec(rel.Columns[i].Type)
	}
	for _, r := range rows {
		for i := range vecs {
			vecs[i].Append(r[i])
		}
	}
	return &ColBatch{Rel: rel, Vecs: vecs, N: len(rows)}
}

// ColIterator is the columnar analogue of RowIterator: NextBatch returns
// the next batch or nil when exhausted. Batches are read-only windows (see
// the ownership rules above) and remain valid after subsequent pulls —
// unlike row batches, there is no buffer reuse to guard against, because
// windows alias append-only storage.
type ColIterator interface {
	NextBatch() (*ColBatch, error)
	Close()
}

// ColMorsel is one unit of columnar parallel work, mirroring Morsel: Seq is
// the 0-based claim index, contiguous across workers; Batch is nil once the
// source is exhausted.
type ColMorsel struct {
	Seq   int
	Batch *ColBatch
}

// ColMorselSource hands out column-batch morsels to concurrent workers
// under the same contract as MorselSource: concurrent NextColMorsel calls
// are safe, an error is delivered exactly once carrying its serial Seq, and
// Close is idempotent and concurrent-safe.
type ColMorselSource interface {
	NextColMorsel() (ColMorsel, error)
	Close()
}
