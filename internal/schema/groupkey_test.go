package schema

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// The canonical grouping key is the single definition of "same group" for
// every hashed operator (join, DISTINCT, GROUP BY, window partitioning).
// These tables pin its semantics: which values share a key, which never do,
// and that concatenated multi-column keys stay unambiguous.

func key(v Value) string { return string(v.AppendGroupKey(nil)) }

func TestGroupKeySameGroup(t *testing.T) {
	nan2 := math.Float64frombits(0x7FF8000000000001) // different NaN payload
	utc := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		a, b Value
	}{
		{"null with null", Null(), Null()},
		{"int with equal float", Int(1), Float(1.0)},
		{"int with itself", Int(-42), Int(-42)},
		{"nan with other-payload nan", Float(math.NaN()), Float(nan2)},
		{"plus zero with plus zero", Float(0.0), Float(0.0)},
		{"int zero with float plus zero", Int(0), Float(0.0)},
		{"string with equal string", String("a\x1fb"), String("a\x1fb")},
		{"time across locations", Time(utc), Time(utc.In(time.FixedZone("x", 3600)))},
		{"bool with bool", Bool(true), Bool(true)},
	}
	for _, c := range cases {
		if key(c.a) != key(c.b) {
			t.Errorf("%s: keys differ: %q vs %q", c.name, key(c.a), key(c.b))
		}
		if !c.a.GroupEqual(c.b) || !c.b.GroupEqual(c.a) {
			t.Errorf("%s: GroupEqual false, but keys equal", c.name)
		}
	}
}

func TestGroupKeyDistinctGroups(t *testing.T) {
	cases := []struct {
		name string
		a, b Value
	}{
		{"null vs int", Null(), Int(0)},
		{"null vs empty string", Null(), String("")},
		{"null vs false", Null(), Bool(false)},
		{"minus zero vs plus zero", Float(math.Copysign(0, -1)), Float(0.0)},
		{"nan vs inf", Float(math.NaN()), Float(math.Inf(1))},
		{"int 1 vs int 2", Int(1), Int(2)},
		{"bool vs int", Bool(true), Int(1)},
		{"string vs its numeric value", String("1"), Int(1)},
		{"string case sensitive", String("a"), String("A")},
	}
	for _, c := range cases {
		if key(c.a) == key(c.b) {
			t.Errorf("%s: keys collide: %q", c.name, key(c.a))
		}
		if c.a.GroupEqual(c.b) || c.b.GroupEqual(c.a) {
			t.Errorf("%s: GroupEqual true, but keys differ", c.name)
		}
	}
}

// TestGroupEqualMatchesKeyEquality checks the contract that GroupEqual is
// exactly key equality over a cross product of awkward values.
func TestGroupEqualMatchesKeyEquality(t *testing.T) {
	vals := []Value{
		Null(), Bool(false), Bool(true),
		Int(0), Int(1), Int(-1), Int(math.MaxInt64),
		Float(0), Float(math.Copysign(0, -1)), Float(1), Float(1.5),
		Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)),
		String(""), String("0"), String("a"), String("a\x1fb"),
		Time(time.Unix(0, 0)), Time(time.Unix(1, 1)),
	}
	for _, a := range vals {
		for _, b := range vals {
			if a.GroupEqual(b) != (key(a) == key(b)) {
				t.Errorf("GroupEqual(%s, %s) = %v, key equality = %v",
					a.Format(), b.Format(), a.GroupEqual(b), key(a) == key(b))
			}
		}
	}
}

// TestGroupKeySelfDelimiting pins the property the no-separator concatenation
// relies on: distinct column tuples never concatenate to the same bytes,
// even when the values contain the legacy 0x1f separator or each other's
// prefixes.
func TestGroupKeySelfDelimiting(t *testing.T) {
	tuples := [][]Value{
		{String("a"), String("b")},
		{String("ab"), String("")},
		{String(""), String("ab")},
		{String("a\x1fb"), String("")},
		{String("a"), String("\x1fb")},
		{Int(1), Int(2)},
		{Float(1.0), Int(2)}, // same group as {Int(1), Int(2)} — see below
		{Null(), String("n")},
		{String("n"), Null()},
	}
	keys := make([]string, len(tuples))
	for i, tp := range tuples {
		var buf []byte
		for _, v := range tp {
			buf = v.AppendGroupKey(buf)
		}
		keys[i] = string(buf)
	}
	for i := range tuples {
		for j := range tuples {
			if i == j {
				continue
			}
			same := len(tuples[i]) == len(tuples[j])
			if same {
				for k := range tuples[i] {
					if !tuples[i][k].GroupEqual(tuples[j][k]) {
						same = false
						break
					}
				}
			}
			if (keys[i] == keys[j]) != same {
				t.Errorf("tuples %d and %d: key collision mismatch (same=%v, keys %q vs %q)",
					i, j, same, keys[i], keys[j])
			}
		}
	}
}

// TestRowAppendGroupKey checks the row helper agrees with per-value
// concatenation over a column subset.
func TestRowAppendGroupKey(t *testing.T) {
	r := Row{Int(1), String("x"), Null(), Float(2.5)}
	idx := []int{3, 0, 2}
	var want []byte
	for _, i := range idx {
		want = r[i].AppendGroupKey(want)
	}
	got := r.AppendGroupKey(nil, idx)
	if !bytes.Equal(got, want) {
		t.Fatalf("Row.AppendGroupKey = %q, want %q", got, want)
	}
}

func TestNumericKeyBitsCanonicalizesNaN(t *testing.T) {
	a := NumericKeyBits(math.NaN())
	b := NumericKeyBits(math.Float64frombits(0xFFF8000000000123))
	if a != b {
		t.Fatalf("NaN payloads map to different key bits: %x vs %x", a, b)
	}
	if NumericKeyBits(1.0) != math.Float64bits(1.0) {
		t.Fatal("non-NaN bits must be the IEEE-754 bits")
	}
}
