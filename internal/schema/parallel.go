package schema

import "sync"

// This file extends the batch-iterator vocabulary with the concurrent
// contract used by morsel-driven parallel execution: a relation is split
// into morsels (sequence-numbered batches) handed out to worker goroutines
// through a shared MorselSource.
//
// Ownership rules under concurrency (the engine's parallel operators and
// any future implementation must preserve them):
//
//   - A morsel's Rows slice is owned by the worker that pulled it until the
//     worker hands its transformed output downstream. Workers must never
//     mutate a morsel in place: a morsel may alias storage-owned memory
//     (table subslices), so a transforming stage either passes the batch
//     through untouched or allocates a fresh output slice.
//   - Batches produced by concurrent workers are never reused: unlike the
//     serial RowIterator contract (batch valid only until the next pull),
//     a parallel pipeline transfers ownership of each emitted batch to the
//     consumer outright, because the producer cannot know when the consumer
//     advances.
//   - Seq numbers are assigned contiguously in pull order. An exchange that
//     must preserve the serial row order (everything the engine parallelizes
//     does, so parallel results are row-identical to serial execution)
//     re-emits batches in Seq order.

// Morsel is one unit of parallel work: a batch of rows plus its position in
// the source's pull order. Rows is nil once the source is exhausted.
type Morsel struct {
	// Seq is the 0-based pull index, contiguous across all workers.
	Seq int
	// Rows is the batch; nil means the source is exhausted.
	Rows Rows
}

// MorselSource hands out morsels to concurrent workers. Implementations
// must be safe for concurrent NextMorsel calls.
//
// NextMorsel returns the next morsel, or a Morsel with nil Rows once the
// source is exhausted or closed. An error is delivered exactly once, to
// exactly one caller, carrying the Seq at which the serial iterator would
// have surfaced it; every later call observes exhaustion. Close stops the
// source (subsequent pulls observe exhaustion) and releases the upstream
// iterator; it must be safe to call concurrently with NextMorsel and more
// than once.
type MorselSource interface {
	NextMorsel() (Morsel, error)
	Close()
}

// sharedMorsels adapts any RowIterator into a MorselSource by serializing
// pulls behind a mutex. Each pull is one morsel, so the serial fraction of
// a parallel scan is the underlying Next call plus one header copy, while
// filtering, projection and probing run concurrently in the workers.
type sharedMorsels struct {
	mu     sync.Mutex
	src    RowIterator
	seq    int
	done   bool
	closed bool
}

// ShareIterator wraps an iterator as a MorselSource for concurrent workers.
// The serial iterator contract only keeps a batch valid until the next pull
// (producers may reuse the header buffer), but a morsel outlives the pull —
// workers hold it while other workers keep pulling — so each batch header
// is copied into a fresh slice here. The rows inside a batch are immutable
// and retainable by contract, so only the header is copied, never the rows.
func ShareIterator(it RowIterator) MorselSource {
	return &sharedMorsels{src: it}
}

func (s *sharedMorsels) NextMorsel() (Morsel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return Morsel{}, nil
	}
	batch, err := s.src.Next()
	if err != nil {
		s.done = true
		return Morsel{Seq: s.seq}, err
	}
	if batch == nil {
		s.done = true
		return Morsel{}, nil
	}
	owned := make(Rows, len(batch))
	copy(owned, batch)
	m := Morsel{Seq: s.seq, Rows: owned}
	s.seq++
	return m, nil
}

func (s *sharedMorsels) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	if !s.closed {
		s.closed = true
		s.src.Close()
	}
}

// IterateMorsels adapts a shared MorselSource back into the serial
// iterator interface: each pull claims the next unclaimed morsel. Several
// such iterators over one source partition it — each morsel is served to
// exactly one of them. Close stops this partition only and never closes
// the shared source: releasing the source (and whatever it wraps) is the
// source owner's job, via MorselSource.Close.
func IterateMorsels(src MorselSource) RowIterator {
	return &morselIterator{src: src}
}

type morselIterator struct {
	src  MorselSource
	done bool
}

func (p *morselIterator) Next() (Rows, error) {
	if p.done {
		return nil, nil
	}
	m, err := p.src.NextMorsel()
	if err != nil {
		p.done = true
		return nil, err
	}
	if m.Rows == nil {
		p.done = true
		return nil, nil
	}
	return m.Rows, nil
}

func (p *morselIterator) Close() { p.done = true }
