package schema

import (
	"context"
	"errors"
	"testing"
)

func iterRows(n int) Rows {
	out := make(Rows, n)
	for i := range out {
		out[i] = Row{Int(int64(i))}
	}
	return out
}

func TestIterateRowsBatches(t *testing.T) {
	it := IterateRows(iterRows(10), 3)
	var total, batches int
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		total += len(b)
	}
	if total != 10 || batches != 4 {
		t.Fatalf("total=%d batches=%d", total, batches)
	}
}

func TestIterateRowsEmpty(t *testing.T) {
	it := IterateRows(nil, 4)
	if b, err := it.Next(); err != nil || b != nil {
		t.Fatalf("empty iterator yielded %v, %v", b, err)
	}
}

func TestScanRowsFilterProject(t *testing.T) {
	rows := make(Rows, 20)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), String("v")}
	}
	it := ScanRows(rows, Scan{
		Columns:   []int{0},
		Filter:    func(r Row) (bool, error) { return r[0].AsInt()%2 == 0, nil },
		BatchSize: 4,
	})
	got, err := DrainIterator(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("want 10 even rows, got %d", len(got))
	}
	for i, r := range got {
		if len(r) != 1 || r[0].AsInt() != int64(2*i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestScanRowsFilterError(t *testing.T) {
	wantErr := errors.New("boom")
	it := ScanRows(iterRows(5), Scan{
		Filter: func(Row) (bool, error) { return false, wantErr },
	})
	if _, err := DrainIterator(it); !errors.Is(err, wantErr) {
		t.Fatalf("want filter error, got %v", err)
	}
}

func TestFilterProjectEmptyScanPassthrough(t *testing.T) {
	src := IterateRows(iterRows(3), 2)
	if FilterProject(src, Scan{}) != src {
		t.Fatal("empty scan should not wrap the iterator")
	}
}

func TestProjectRelation(t *testing.T) {
	rel := NewRelation("r", Col("a", TypeInt), Col("b", TypeFloat), Col("c", TypeString))
	p := rel.Project([]int{2, 0})
	if p.Arity() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Fatalf("projected = %s", p)
	}
	if rel.Project(nil) != rel {
		t.Fatal("nil projection should return the relation unchanged")
	}
}

// TestIteratorCloseIdempotent: every iterator of this package tolerates a
// double Close and stays exhausted afterwards — cursors make double-Close
// an easy caller mistake, so the whole stack must absorb it.
func TestIteratorCloseIdempotent(t *testing.T) {
	rows := Rows{{Int(1)}, {Int(2)}, {Int(3)}}
	iters := map[string]RowIterator{
		"slice":  IterateRows(rows, 2),
		"scan":   ScanRows(rows, Scan{Filter: func(Row) (bool, error) { return true, nil }}),
		"ctx":    WithContext(cancelledCtx(), IterateRows(rows, 2)),
		"filter": FilterProject(IterateRows(rows, 2), Scan{Columns: []int{0}}),
	}
	for name, it := range iters {
		it.Close()
		it.Close() // must not panic or resurrect the stream
		b, err := it.Next()
		if name == "ctx" {
			if err == nil {
				t.Errorf("%s: Next after Close should keep the ctx error", name)
			}
			continue
		}
		if b != nil || err != nil {
			t.Errorf("%s: Next after double Close = %v, %v; want nil, nil", name, b, err)
		}
	}
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}
