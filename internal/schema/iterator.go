package schema

import "context"

// This file defines the batch-iterator vocabulary shared by the storage,
// engine, fragment, network and stream layers: relations flow through the
// execution pipeline as pulled batches of rows instead of fully materialized
// Rows slices, so intermediate memory is bounded by the batch size and a
// consumer that stops early (LIMIT) stops its producers too.

// DefaultBatchSize is the number of rows one iterator pull delivers when the
// caller does not choose a size. Small enough for an appliance-class node to
// hold a handful of batches, large enough to amortize per-pull overhead.
const DefaultBatchSize = 256

// RowIterator streams a relation batch-at-a-time. Next returns the next
// batch, or a nil batch when the source is exhausted. The returned slice is
// only valid until the following Next call (implementations may reuse the
// batch buffer); the rows inside it are immutable and may be retained.
// Close releases upstream resources and must be safe to call more than once;
// callers that stop before exhaustion must Close.
type RowIterator interface {
	Next() (Rows, error)
	Close()
}

// Predicate filters rows during a scan. It must not retain or mutate the row.
type Predicate func(Row) (bool, error)

// Scan describes a pushed-down scan over a named relation: an optional
// column projection, an optional row predicate (applied before projection,
// over the full-width row), and the batch size.
type Scan struct {
	// Columns selects positions of the scanned relation in output order;
	// nil keeps every column.
	Columns []int
	// Filter drops rows before projection; nil keeps every row.
	Filter Predicate
	// Predicate is the structured restatement of Filter's kernelizable
	// conjunct prefix (see ColPred): a pruning hint that lets storage skip
	// segments whose zone maps prove no row can pass. Filter remains
	// authoritative — setting Predicate without an implying Filter is a
	// caller bug. Must be nil when Filter is nil.
	Predicate []ColPred
	// BatchSize caps rows per pull; <= 0 means DefaultBatchSize.
	BatchSize int
}

// Empty reports whether the scan is a plain full-relation read.
func (sc Scan) Empty() bool { return sc.Columns == nil && sc.Filter == nil }

// batch normalizes the batch size.
func (sc Scan) batch() int {
	if sc.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return sc.BatchSize
}

// Project returns the relation restricted to the given column positions, in
// that order. A nil cols returns the receiver unchanged.
func (r *Relation) Project(cols []int) *Relation {
	if cols == nil {
		return r
	}
	out := &Relation{Name: r.Name, Columns: make([]Column, len(cols))}
	for i, c := range cols {
		out.Columns[i] = r.Columns[c]
	}
	return out
}

// SizeHinter is optionally implemented by iterators that can bound how many
// rows remain. DrainIterator pre-sizes its output from the hint; 0 means
// unknown. Hints must never under-report for exact sources, and operators
// that drop rows (filters) must not forward an upstream hint.
type SizeHinter interface{ SizeHint() int }

// sliceIterator serves batches as subslices of materialized rows: no copying
// and no per-batch allocation.
type sliceIterator struct {
	rows  Rows
	pos   int
	batch int
}

// IterateRows adapts materialized rows to the iterator interface. Batches
// alias the input slice.
func IterateRows(rows Rows, batchSize int) RowIterator {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &sliceIterator{rows: rows, batch: batchSize}
}

func (s *sliceIterator) Next() (Rows, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + s.batch
	if end > len(s.rows) {
		end = len(s.rows)
	}
	out := s.rows[s.pos:end]
	s.pos = end
	return out, nil
}

func (s *sliceIterator) Close() { s.pos = len(s.rows) }

func (s *sliceIterator) SizeHint() int { return len(s.rows) - s.pos }

// scanIterator applies a Scan (filter then projection) to an upstream
// iterator, reusing one output buffer across pulls.
type scanIterator struct {
	src RowIterator
	sc  Scan
	buf Rows
}

// FilterProject wraps an iterator with a Scan's filter and projection. An
// empty scan returns the iterator unchanged.
func FilterProject(src RowIterator, sc Scan) RowIterator {
	if sc.Empty() {
		return src
	}
	return &scanIterator{src: src, sc: sc}
}

// ScanRows applies a Scan to materialized rows: the batch-iterator form of a
// table scan for sources that hold their relations in memory.
func ScanRows(rows Rows, sc Scan) RowIterator {
	return FilterProject(IterateRows(rows, sc.batch()), sc)
}

func (s *scanIterator) Next() (Rows, error) {
	for {
		in, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		// Projected rows share one backing array per batch: one allocation
		// per pull instead of one per row. The array is fresh each batch —
		// rows may be retained by consumers — only the header buffer is
		// reused.
		var vals []Value
		if s.sc.Columns != nil {
			vals = make([]Value, 0, len(in)*len(s.sc.Columns))
		}
		out := s.buf[:0]
		for _, r := range in {
			if s.sc.Filter != nil {
				ok, err := s.sc.Filter(r)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			if s.sc.Columns != nil {
				start := len(vals)
				for _, c := range s.sc.Columns {
					vals = append(vals, r[c])
				}
				r = vals[start:len(vals):len(vals)]
			}
			out = append(out, r)
		}
		if len(out) > 0 {
			s.buf = out
			return out, nil
		}
		// Every row of the batch was filtered out: pull again rather than
		// returning an ambiguous empty batch.
	}
}

func (s *scanIterator) Close() { s.src.Close() }

func (s *scanIterator) SizeHint() int {
	if s.sc.Filter != nil {
		return 0 // a filter may drop anything; no useful bound
	}
	if h, ok := s.src.(SizeHinter); ok {
		return h.SizeHint()
	}
	return 0
}

// WithContext binds an iterator to a context: every pull first checks the
// context and surfaces ctx.Err() once it is cancelled, so a cancelled
// consumer stops within one batch no matter how much input remains. A
// context that can never be cancelled (Background, TODO) adds no wrapper.
func WithContext(ctx context.Context, it RowIterator) RowIterator {
	if ctx == nil || ctx.Done() == nil {
		return it
	}
	return &ctxIterator{ctx: ctx, src: it}
}

type ctxIterator struct {
	ctx context.Context
	src RowIterator
}

func (c *ctxIterator) Next() (Rows, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return c.src.Next()
}

func (c *ctxIterator) Close() { c.src.Close() }

func (c *ctxIterator) SizeHint() int {
	if h, ok := c.src.(SizeHinter); ok {
		return h.SizeHint()
	}
	return 0
}

// DrainIterator consumes an iterator to exhaustion, materializing all
// remaining rows, and closes it.
func DrainIterator(it RowIterator) (Rows, error) {
	defer it.Close()
	var out Rows
	if h, ok := it.(SizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			out = make(Rows, 0, n)
		}
	}
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}
