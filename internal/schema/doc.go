// Package schema defines the value model, row representation and relation
// schemas shared by every layer of PArADISE — the storage engine, the SQL
// executor, the stream processor, the anonymizer and the privacy metrics —
// plus the iterator vocabulary those layers stream rows through.
//
// Two execution contracts live here:
//
// The serial batch-iterator contract (iterator.go): relations flow as
// pulled batches of rows (RowIterator); a batch is valid only until the
// following Next call, while the rows inside it are immutable and may be
// retained; consumers that stop early must Close, and Close propagates
// upstream. WithContext binds a pipeline to a context checked per pull.
//
// The concurrent morsel contract (parallel.go): a relation is split into
// sequence-numbered morsels handed out to worker goroutines through a
// shared MorselSource. Workers own the morsels they pull, must never
// mutate a batch in place, and transfer ownership of their output outright
// — there is no reuse window across an exchange. The contract's ownership
// rules are what let the engine run scans, filters, projections and probes
// on N workers while remaining row-identical to serial execution.
package schema
