// Package schema defines the value model, row representation and relation
// schemas shared by every layer of PArADISE — the storage engine, the SQL
// executor, the stream processor, the anonymizer and the privacy metrics —
// plus the iterator vocabulary those layers stream rows through.
//
// Two execution contracts live here:
//
// The serial batch-iterator contract (iterator.go): relations flow as
// pulled batches of rows (RowIterator); a batch is valid only until the
// following Next call, while the rows inside it are immutable and may be
// retained; consumers that stop early must Close, and Close propagates
// upstream. WithContext binds a pipeline to a context checked per pull.
//
// The concurrent morsel contract (parallel.go): a relation is split into
// sequence-numbered morsels handed out to worker goroutines through a
// shared MorselSource. Workers own the morsels they pull, must never
// mutate a batch in place, and transfer ownership of their output outright
// — there is no reuse window across an exchange. The contract's ownership
// rules are what let the engine run scans, filters, projections and probes
// on N workers while remaining row-identical to serial execution.
//
// The columnar contract (colbatch.go): relations can also flow as
// ColBatches — typed column vectors (ColVec) plus a selection vector and
// an optional row-major View mirror — pulled through ColIterator or
// claimed concurrently through ColMorselSource. Batches are read-only
// windows over append-only storage; refining a selection allocates a new
// Sel (nil Sel means all rows live); pivoting back to rows happens at
// operator boundaries, never inside kernels. A vector that receives a
// wrong-typed value degrades to boxed storage and round-trips exactly.
//
// One more contract cuts across both: AppendGroupKey (value.go) defines
// the canonical self-delimiting byte key every hashed operator uses to
// decide "same group" — NULL groups with NULL, NaN with NaN, 1 with 1.0,
// -0.0 apart from +0.0 — emitted identically from boxed values
// (Value.AppendGroupKey), rows (Row.AppendGroupKey) and column vectors
// (ColVec.AppendGroupKey).
package schema
