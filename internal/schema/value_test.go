package schema

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Type() != TypeNull {
		t.Fatal("Null broken")
	}
	if !Bool(true).AsBool() || Bool(true).Type() != TypeBool {
		t.Fatal("Bool broken")
	}
	if Int(7).AsInt() != 7 {
		t.Fatal("Int broken")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Fatal("Float broken")
	}
	if String("hi").AsString() != "hi" {
		t.Fatal("String broken")
	}
	ts := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	if !Time(ts).AsTime().Equal(ts) {
		t.Fatal("Time broken")
	}
	// Int coerces via AsFloat.
	if Int(3).AsFloat() != 3.0 {
		t.Fatal("Int AsFloat coercion broken")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null().AsBool() },
		func() { String("x").AsInt() },
		func() { Bool(true).AsFloat() },
		func() { Int(1).AsString() },
		func() { Float(1).AsTime() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b   Value
		want   int
		wantOK bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.0), 0, true},
		{Float(1.5), Int(1), 1, true},
		{String("a"), String("b"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Null(), Int(1), 0, false},
		{Int(1), Null(), 0, false},
		{String("a"), Int(1), 0, false},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1, true},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if ok != c.wantOK || (ok && got != c.want) {
			t.Errorf("Compare(%s, %s) = %d,%v want %d,%v",
				c.a.Format(), c.b.Format(), got, ok, c.want, c.wantOK)
		}
	}
}

func TestEqualVsIdentical(t *testing.T) {
	if Null().Equal(Null()) {
		t.Fatal("SQL NULL = NULL must not hold")
	}
	if !Null().Identical(Null()) {
		t.Fatal("Identical groups NULLs")
	}
	if !Int(1).Identical(Float(1)) {
		t.Fatal("1 and 1.0 group together")
	}
}

func TestGroupKeyConsistency(t *testing.T) {
	// Identical values must share group keys; distinct ones must not.
	pairs := []struct {
		a, b Value
		same bool
	}{
		{Int(1), Float(1.0), true},
		{Int(1), Int(2), false},
		{String("a"), String("a"), true},
		{Null(), Null(), true},
		{Bool(true), Bool(false), false},
		{String("1"), Int(1), false}, // different types, different keys
	}
	for _, p := range pairs {
		if (p.a.GroupKey() == p.b.GroupKey()) != p.same {
			t.Errorf("GroupKey(%s) vs GroupKey(%s): same=%v want %v",
				p.a.Format(), p.b.Format(), !p.same, p.same)
		}
	}
}

func TestSQLLiteralRoundTrips(t *testing.T) {
	if Int(-5).SQLLiteral() != "-5" {
		t.Fatal(Int(-5).SQLLiteral())
	}
	if String("it's").SQLLiteral() != "'it''s'" {
		t.Fatal(String("it's").SQLLiteral())
	}
	if Bool(true).SQLLiteral() != "TRUE" {
		t.Fatal(Bool(true).SQLLiteral())
	}
	if Null().SQLLiteral() != "NULL" {
		t.Fatal(Null().SQLLiteral())
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("3.5", TypeFloat)
	if err != nil || v.AsFloat() != 3.5 {
		t.Fatalf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue("42", TypeInt)
	if err != nil || v.AsInt() != 42 {
		t.Fatalf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue("true", TypeBool)
	if err != nil || !v.AsBool() {
		t.Fatalf("ParseValue bool: %v %v", v, err)
	}
	v, err = ParseValue("", TypeInt)
	if err != nil || !v.IsNull() {
		t.Fatalf("empty should be NULL: %v %v", v, err)
	}
	if _, err := ParseValue("abc", TypeInt); err == nil {
		t.Fatal("bad int should error")
	}
	if _, err := ParseValue("notatime", TypeTime); err == nil {
		t.Fatal("bad time should error")
	}
}

func TestWireSize(t *testing.T) {
	if Null().WireSize() != 1 || Int(1).WireSize() != 8 {
		t.Fatal("fixed sizes wrong")
	}
	if String("abcd").WireSize() != 6 {
		t.Fatal("string size = 2 + len")
	}
	row := Row{Int(1), String("ab")}
	if row.WireSize() != 2+8+4 {
		t.Fatalf("row wire size = %d", row.WireSize())
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		c1, ok1 := va.Compare(vb)
		c2, ok2 := vb.Compare(va)
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatGroupKeyEqualsCompareProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		va, vb := Float(a), Float(b)
		c, ok := va.Compare(vb)
		if !ok {
			return true
		}
		return (c == 0) == (va.GroupKey() == vb.GroupKey())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelationLookup(t *testing.T) {
	r := NewRelation("d", Col("x", TypeFloat), SensitiveCol("USER", TypeString))
	if r.Arity() != 2 {
		t.Fatal("arity")
	}
	i, err := r.Index("X")
	if err != nil || i != 0 {
		t.Fatalf("case-insensitive lookup failed: %d %v", i, err)
	}
	if !r.Has("user") || r.Has("nope") {
		t.Fatal("Has broken")
	}
	if _, err := r.Index("nope"); err == nil {
		t.Fatal("missing column should error")
	}
	if !r.Columns[1].Sensitive {
		t.Fatal("SensitiveCol flag lost")
	}
	if r.Columns[1].Name != "user" {
		t.Fatal("names lower-cased")
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := NewRelation("d", Col("x", TypeFloat))
	c := r.Clone("d2")
	c.Columns[0].Name = "mut"
	if r.Columns[0].Name != "x" {
		t.Fatal("clone shares columns")
	}
	if c.Name != "d2" {
		t.Fatal("clone name")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Register(NewRelation("B", Col("x", TypeInt)))
	c.Register(NewRelation("a", Col("y", TypeInt)))
	if _, ok := c.Lookup("b"); !ok {
		t.Fatal("case-insensitive catalog lookup")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRowsHelpers(t *testing.T) {
	rows := Rows{{Int(1), String("a")}, {Int(2), String("b")}}
	cl := rows.Clone()
	cl[0][0] = Int(99)
	if rows[0][0].AsInt() != 1 {
		t.Fatal("Clone must deep-copy")
	}
	if rows.WireSize() != rows[0].WireSize()+rows[1].WireSize() {
		t.Fatal("WireSize sums rows")
	}
	key1 := rows[0].GroupKey([]int{0, 1})
	key2 := rows[1].GroupKey([]int{0, 1})
	if key1 == key2 {
		t.Fatal("distinct rows share group key")
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeNull: "NULL", TypeBool: "BOOLEAN", TypeInt: "BIGINT",
		TypeFloat: "DOUBLE", TypeString: "VARCHAR", TypeTime: "TIMESTAMP",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %s", typ, typ.String())
		}
	}
	if !TypeInt.Numeric() || !TypeFloat.Numeric() || TypeString.Numeric() {
		t.Fatal("Numeric flags wrong")
	}
}
