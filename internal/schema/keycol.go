package schema

import (
	"math"
	"strings"
	"time"
)

// CompareForSort totally orders two values for sorting: NULL sorts before
// everything, comparable pairs use Compare, and incomparable pairs (mixed
// non-numeric types, NaN against anything) order by type tag so sorting
// stays deterministic. This is the single ordering used by ORDER BY and
// window partition sorts; KeyCol.Compare must agree with it pairwise.
func CompareForSort(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, ok := a.Compare(b); ok {
		return c
	}
	switch {
	case a.typ < b.typ:
		return -1
	case a.typ > b.typ:
		return 1
	default:
		return 0
	}
}

// KeyCol is one extracted sort-key column: values appended in row order,
// stored unboxed while every non-NULL value shares one runtime type, with a
// lazily-allocated null mask. A mixed-type column degrades to boxed Values
// and compares through CompareForSort, so Compare(i, j) always equals
// CompareForSort(row i's value, row j's value) — the typed fast paths are
// an encoding, never a semantic change.
type KeyCol struct {
	typ    Type // runtime type of the non-NULL values; TypeNull until the first one
	n      int
	nulls  []bool // nil while the column is NULL-free
	bools  []bool
	ints   []int64
	floats []float64
	strs   []string
	times  []time.Time
	box    []Value // non-nil once runtime types mixed; payloads above are dead
	nan    bool    // some appended float was NaN (kills the top-K total order)
}

// Len returns the number of appended values.
func (k *KeyCol) Len() int { return k.n }

// HasNaN reports whether any appended value was a float NaN. With NaN
// present the pairwise order is not transitive (NaN ties with everything
// float-comparable), so callers must not treat Compare as a strict weak
// order — stable full sorts remain deterministic, selection shortcuts do
// not.
func (k *KeyCol) HasNaN() bool { return k.nan }

// Append adds the next row's key value.
func (k *KeyCol) Append(v Value) {
	if v.typ == TypeFloat && math.IsNaN(v.f) {
		k.nan = true
	}
	if k.box != nil {
		k.box = append(k.box, v)
		k.n++
		return
	}
	if v.typ == TypeNull {
		if k.nulls == nil {
			k.nulls = make([]bool, k.n, k.n+1)
		}
		k.nulls = append(k.nulls, true)
		k.appendZero()
		k.n++
		return
	}
	if k.typ == TypeNull {
		// First non-NULL value fixes the payload type; any NULLs so far
		// already sit in the mask, backfill their payload slots.
		k.typ = v.typ
		for i := 0; i < k.n; i++ {
			k.appendZero()
		}
	} else if v.typ != k.typ {
		k.degrade()
		k.box = append(k.box, v)
		k.n++
		return
	}
	if k.nulls != nil {
		k.nulls = append(k.nulls, false)
	}
	switch k.typ {
	case TypeBool:
		k.bools = append(k.bools, v.b)
	case TypeInt:
		k.ints = append(k.ints, v.i)
	case TypeFloat:
		k.floats = append(k.floats, v.f)
	case TypeString:
		k.strs = append(k.strs, v.s)
	case TypeTime:
		k.times = append(k.times, v.t)
	}
	k.n++
}

func (k *KeyCol) appendZero() {
	switch k.typ {
	case TypeBool:
		k.bools = append(k.bools, false)
	case TypeInt:
		k.ints = append(k.ints, 0)
	case TypeFloat:
		k.floats = append(k.floats, 0)
	case TypeString:
		k.strs = append(k.strs, "")
	case TypeTime:
		k.times = append(k.times, time.Time{})
	}
}

// degrade re-boxes everything appended so far; from here on the column
// compares through CompareForSort per pair.
func (k *KeyCol) degrade() {
	k.box = make([]Value, k.n, k.n+1)
	for i := 0; i < k.n; i++ {
		k.box[i] = k.value(i)
	}
	k.nulls = nil
}

// value reconstructs the boxed form of element i (typed storage only).
func (k *KeyCol) value(i int) Value {
	if k.nulls != nil && k.nulls[i] {
		return Value{}
	}
	switch k.typ {
	case TypeBool:
		return Bool(k.bools[i])
	case TypeInt:
		return Int(k.ints[i])
	case TypeFloat:
		return Float(k.floats[i])
	case TypeString:
		return String(k.strs[i])
	case TypeTime:
		return Time(k.times[i])
	}
	return Value{}
}

// Compare orders elements i and j exactly as CompareForSort orders their
// boxed forms. The typed branches below are each pairwise-identical to
// Value.Compare for a same-type pair: int64 order for ints, IEEE order for
// floats with NaN tying everything (Compare reports !ok, the type tags are
// equal, so CompareForSort returns 0), strings.Compare for strings,
// false < true for bools, and Before/After for times.
func (k *KeyCol) Compare(i, j int) int {
	if k.box != nil {
		return CompareForSort(k.box[i], k.box[j])
	}
	if k.nulls != nil {
		ni, nj := k.nulls[i], k.nulls[j]
		switch {
		case ni && nj:
			return 0
		case ni:
			return -1
		case nj:
			return 1
		}
	}
	switch k.typ {
	case TypeBool:
		a, b := k.bools[i], k.bools[j]
		switch {
		case a == b:
			return 0
		case !a:
			return -1
		default:
			return 1
		}
	case TypeInt:
		a, b := k.ints[i], k.ints[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case TypeFloat:
		a, b := k.floats[i], k.floats[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case TypeString:
		return strings.Compare(k.strs[i], k.strs[j])
	case TypeTime:
		a, b := k.times[i], k.times[j]
		switch {
		case a.Before(b):
			return -1
		case a.After(b):
			return 1
		default:
			return 0
		}
	}
	return 0 // all-NULL column: the mask already handled every pair
}
