package schema

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// rowsEqual compares two row sets value by value with GroupEqual-style
// strictness relaxed to plain equality semantics: same type, same payload.
func rowsEqual(a, b Rows) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			x, y := a[i][c], b[i][c]
			if x.Type() != y.Type() {
				return false
			}
			if x.IsNull() {
				continue
			}
			cmp, ok := x.Compare(y)
			if !ok || cmp != 0 {
				// NaN compares unequal to itself; treat matching NaNs as equal.
				if x.Type() == TypeFloat && math.IsNaN(x.AsFloat()) && math.IsNaN(y.AsFloat()) {
					continue
				}
				return false
			}
		}
	}
	return true
}

func pivotRel() *Relation {
	return NewRelation("p",
		Col("b", TypeBool),
		Col("i", TypeInt),
		Col("f", TypeFloat),
		Col("s", TypeString),
		Col("t", TypeTime),
	)
}

func pivotRows() Rows {
	t0 := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	return Rows{
		{Bool(true), Int(1), Float(1.5), String("a"), Time(t0)},
		{Bool(false), Int(-2), Float(math.NaN()), String(""), Time(t0.Add(time.Hour))},
		{Null(), Null(), Null(), Null(), Null()},
		{Bool(true), Int(math.MaxInt64), Float(math.Inf(-1)), String("a\x00b"), Time(time.Time{})},
	}
}

// TestBatchRoundTripAllTypes pivots rows of every type (with NULLs mixed in)
// to columns and back and requires an exact round trip.
func TestBatchRoundTripAllTypes(t *testing.T) {
	rel, rows := pivotRel(), pivotRows()
	cb := BatchFromRows(rel, rows)
	if cb.N != len(rows) || cb.Len() != len(rows) {
		t.Fatalf("batch size: N=%d Len=%d, want %d", cb.N, cb.Len(), len(rows))
	}
	for _, v := range cb.Vecs {
		if v.Boxed() {
			t.Fatalf("homogeneous column degraded to boxed storage")
		}
	}
	if got := cb.Rows(); !rowsEqual(got, rows) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, rows)
	}
	for i := range rows {
		if got := cb.RowAt(i); !rowsEqual(Rows{got}, Rows{rows[i]}) {
			t.Fatalf("RowAt(%d) = %v, want %v", i, got, rows[i])
		}
	}
}

// TestBatchBoxedDegradation inserts a value of the wrong runtime type into a
// declared-int column; the vector must degrade to boxed storage and still
// round-trip exactly.
func TestBatchBoxedDegradation(t *testing.T) {
	rel := NewRelation("p", Col("i", TypeInt))
	rows := Rows{{Int(1)}, {String("not an int")}, {Null()}, {Int(2)}}
	cb := BatchFromRows(rel, rows)
	if !cb.Vecs[0].Boxed() {
		t.Fatal("heterogeneous column must degrade to boxed storage")
	}
	if got := cb.Rows(); !rowsEqual(got, rows) {
		t.Fatalf("boxed round trip mismatch:\n got %v\nwant %v", got, rows)
	}
	// Per-element accessors agree with the boxed values.
	for i := range rows {
		if cb.Vecs[0].Null(i) != rows[i][0].IsNull() {
			t.Fatalf("Null(%d) mismatch", i)
		}
	}
}

// TestBatchSelectionEdges covers the selection-vector edge cases: nil
// (all rows), empty non-nil (no rows), a single row, and a strict subset.
func TestBatchSelectionEdges(t *testing.T) {
	rel, rows := pivotRel(), pivotRows()
	base := BatchFromRows(rel, rows)
	cases := []struct {
		name string
		sel  []int
		want Rows
	}{
		{"nil sel selects all", nil, rows},
		{"empty sel selects none", []int{}, Rows{}},
		{"single row", []int{2}, Rows{rows[2]}},
		{"subset", []int{0, 3}, Rows{rows[0], rows[3]}},
	}
	for _, c := range cases {
		cb := ColBatch{Rel: rel, Vecs: base.Vecs, N: base.N, Sel: c.sel}
		if cb.Len() != len(c.want) {
			t.Errorf("%s: Len = %d, want %d", c.name, cb.Len(), len(c.want))
		}
		got := cb.Rows()
		if got == nil {
			t.Errorf("%s: Rows() returned nil, want non-nil", c.name)
		}
		if !rowsEqual(got, c.want) {
			t.Errorf("%s: rows mismatch:\n got %v\nwant %v", c.name, got, c.want)
		}
	}
}

// TestBatchViewGatherMatchesPivot pins the View contract: when a row-major
// mirror is attached, Rows() must produce exactly what the pivot would.
func TestBatchViewGatherMatchesPivot(t *testing.T) {
	rel, rows := pivotRel(), pivotRows()
	base := BatchFromRows(rel, rows)
	for _, sel := range [][]int{nil, {}, {1}, {0, 2, 3}} {
		plain := ColBatch{Rel: rel, Vecs: base.Vecs, N: base.N, Sel: sel}
		viewed := ColBatch{Rel: rel, Vecs: base.Vecs, N: base.N, Sel: sel, View: rows}
		if !rowsEqual(viewed.Rows(), plain.Rows()) {
			t.Errorf("sel %v: view gather differs from pivot", sel)
		}
		for i := range rows {
			if !rowsEqual(Rows{viewed.RowAt(i)}, Rows{plain.RowAt(i)}) {
				t.Errorf("sel %v: RowAt(%d) differs between view and pivot", sel, i)
			}
		}
	}
}

// TestColVecAppendGroupKeyMatchesValue pins the columnar key fast path to the
// boxed definition: ColVec.AppendGroupKey(dst, i) must produce the same bytes
// as boxing the element and calling Value.AppendGroupKey.
func TestColVecAppendGroupKeyMatchesValue(t *testing.T) {
	rel, rows := pivotRel(), pivotRows()
	cb := BatchFromRows(rel, rows)
	check := func(label string, v *ColVec) {
		for i := 0; i < v.Len(); i++ {
			fast := v.AppendGroupKey(nil, i)
			slow := v.Value(i).AppendGroupKey(nil)
			if !bytes.Equal(fast, slow) {
				t.Errorf("%s[%d]: columnar key %q != boxed key %q", label, i, fast, slow)
			}
		}
	}
	for c := range cb.Vecs {
		check(rel.Columns[c].Name, &cb.Vecs[c])
	}
	// Same contract on a boxed (degraded) vector.
	boxed := NewColVec(TypeInt)
	for _, v := range []Value{Int(1), String("x"), Null(), Float(1.0)} {
		boxed.Append(v)
	}
	if !boxed.Boxed() {
		t.Fatal("expected degraded vector")
	}
	check("boxed", &boxed)
}

// TestColVecWindow checks that windows alias the right elements and preserve
// the NULL mask.
func TestColVecWindow(t *testing.T) {
	v := NewColVec(TypeInt)
	for _, x := range []Value{Int(0), Null(), Int(2), Int(3)} {
		v.Append(x)
	}
	w := v.Window(1, 3)
	if w.Len() != 2 {
		t.Fatalf("window len = %d, want 2", w.Len())
	}
	if !w.Null(0) || w.Null(1) {
		t.Fatal("window null mask misaligned")
	}
	if w.Value(1).AsInt() != 2 {
		t.Fatalf("window element = %v, want 2", w.Value(1))
	}
}
