package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the column types supported by the engine. The set mirrors
// what the smart-environment sensors produce: numbers, strings, booleans and
// timestamps.
type Type int

const (
	// TypeNull is the type of the SQL NULL literal before coercion.
	TypeNull Type = iota
	// TypeBool holds true/false.
	TypeBool
	// TypeInt holds 64-bit signed integers.
	TypeInt
	// TypeFloat holds 64-bit IEEE floats.
	TypeFloat
	// TypeString holds UTF-8 text.
	TypeString
	// TypeTime holds timestamps with nanosecond resolution.
	TypeTime
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool { return t == TypeInt || t == TypeFloat }

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	typ Type
	b   bool
	i   int64
	f   float64
	s   string
	t   time.Time
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{typ: TypeBool, b: b} }

// Int wraps an int64.
func Int(i int64) Value { return Value{typ: TypeInt, i: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{typ: TypeFloat, f: f} }

// String wraps a string value. The name collides with fmt.Stringer on
// purpose-built value constructors; the Stringer method is Format.
func String(s string) Value { return Value{typ: TypeString, s: s} }

// Time wraps a timestamp.
func Time(t time.Time) Value { return Value{typ: TypeTime, t: t} }

// Type returns the runtime type tag of the value.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// AsBool returns the boolean payload. It panics unless Type() == TypeBool.
func (v Value) AsBool() bool {
	if v.typ != TypeBool {
		panic(fmt.Sprintf("schema: AsBool on %s", v.typ))
	}
	return v.b
}

// AsInt returns the integer payload. It panics unless Type() == TypeInt.
func (v Value) AsInt() int64 {
	if v.typ != TypeInt {
		panic(fmt.Sprintf("schema: AsInt on %s", v.typ))
	}
	return v.i
}

// AsFloat returns the value as float64, coercing integers.
// It panics unless the value is numeric.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TypeFloat:
		return v.f
	case TypeInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("schema: AsFloat on %s", v.typ))
	}
}

// AsString returns the string payload. It panics unless Type() == TypeString.
func (v Value) AsString() string {
	if v.typ != TypeString {
		panic(fmt.Sprintf("schema: AsString on %s", v.typ))
	}
	return v.s
}

// AsTime returns the timestamp payload. It panics unless Type() == TypeTime.
func (v Value) AsTime() time.Time {
	if v.typ != TypeTime {
		panic(fmt.Sprintf("schema: AsTime on %s", v.typ))
	}
	return v.t
}

// Format renders the value the way the engine prints result sets.
func (v Value) Format() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.b {
			return "true"
		}
		return "false"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeTime:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("<bad value %d>", int(v.typ))
	}
}

// SQLLiteral renders the value as a SQL literal suitable for re-parsing.
func (v Value) SQLLiteral() string {
	switch v.typ {
	case TypeString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case TypeBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case TypeTime:
		return "'" + v.t.UTC().Format(time.RFC3339Nano) + "'"
	default:
		return v.Format()
	}
}

// Equal reports SQL equality with NULL never equal to anything,
// and numeric cross-type comparison (1 = 1.0).
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Identical reports representational equality, treating NULL as equal to
// NULL. It is used by grouping, DISTINCT and the Direct Distance metric,
// which all follow SQL's "NULLs group together" semantics.
func (v Value) Identical(o Value) bool {
	if v.typ == TypeNull || o.typ == TypeNull {
		return v.typ == o.typ
	}
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders two values. It returns ok=false when the values are not
// comparable (NULL involved, or mismatched non-numeric types).
func (v Value) Compare(o Value) (int, bool) {
	if v.typ == TypeNull || o.typ == TypeNull {
		return 0, false
	}
	if v.typ.Numeric() && o.typ.Numeric() {
		if v.typ == TypeInt && o.typ == TypeInt {
			switch {
			case v.i < o.i:
				return -1, true
			case v.i > o.i:
				return 1, true
			default:
				return 0, true
			}
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		case math.IsNaN(a) || math.IsNaN(b):
			return 0, false
		default:
			return 0, true
		}
	}
	if v.typ != o.typ {
		return 0, false
	}
	switch v.typ {
	case TypeBool:
		switch {
		case v.b == o.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	case TypeString:
		return strings.Compare(v.s, o.s), true
	case TypeTime:
		switch {
		case v.t.Before(o.t):
			return -1, true
		case v.t.After(o.t):
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// GroupKey returns a string that is identical for values that must share a
// group (SQL GROUP BY semantics: NULLs group together, 1 and 1.0 group
// together).
func (v Value) GroupKey() string {
	switch v.typ {
	case TypeNull:
		return "n"
	case TypeBool:
		if v.b {
			return "bT"
		}
		return "bF"
	case TypeInt:
		// Integers group with equal floats.
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case TypeFloat:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return "s" + v.s
	case TypeTime:
		return "t" + strconv.FormatInt(v.t.UnixNano(), 10)
	default:
		return "?"
	}
}

// Canonical grouping keys. Every hashed operator in the engine — join
// build/probe, DISTINCT, GROUP BY, window partitioning — derives its map
// key from this one encoding, so the grouping semantics are defined exactly
// once:
//
//   - NULLs group together ('n'), and never with any non-NULL value.
//   - Numbers group by value across int/float (1 groups with 1.0): both
//     encode as 'f' + big-endian IEEE-754 bits of the float64 value.
//   - Every NaN groups with every other NaN: NaN bits are canonicalized to
//     one quiet-NaN pattern before encoding.
//   - -0.0 and +0.0 group separately (distinct bit patterns), matching the
//     legacy string encoding ("-0" vs "0").
//   - Strings are length-prefixed ('s' + uvarint length + bytes), so
//     concatenated multi-column keys are unambiguous without separators:
//     every part is self-delimiting.
//
// The keys are byte slices appended into a caller-owned scratch buffer;
// map lookups use the m[string(buf)] form, which Go compiles without
// allocating. That replaces the per-row strconv.FormatFloat string building
// of the legacy GroupKey, which dominated the hashed operators' profiles.

// canonicalNaNBits is the single quiet-NaN pattern all NaNs collapse to for
// grouping, so "NaN groups with NaN" holds across different NaN payloads.
const canonicalNaNBits = 0x7FF8000000000000

// NumericKeyBits returns the canonical grouping bit pattern of a float64:
// its IEEE-754 bits, with every NaN collapsed to one pattern. Two numeric
// values belong to the same group iff their NumericKeyBits are equal.
func NumericKeyBits(f float64) uint64 {
	if f != f {
		return canonicalNaNBits
	}
	return math.Float64bits(f)
}

// AppendNullGroupKey appends the canonical key of SQL NULL.
func AppendNullGroupKey(dst []byte) []byte { return append(dst, 'n') }

// AppendBoolGroupKey appends the canonical key of a boolean.
func AppendBoolGroupKey(dst []byte, b bool) []byte {
	if b {
		return append(dst, 'b', 1)
	}
	return append(dst, 'b', 0)
}

// AppendIntGroupKey appends the canonical key of an integer. Integers
// encode through float64 so that 1 groups with 1.0, exactly as the legacy
// string keys did (including the precision loss above 2^53, which keeps
// partitions identical).
func AppendIntGroupKey(dst []byte, i int64) []byte {
	return AppendFloatGroupKey(dst, float64(i))
}

// AppendFloatGroupKey appends the canonical key of a float.
func AppendFloatGroupKey(dst []byte, f float64) []byte {
	dst = append(dst, 'f')
	return binary.BigEndian.AppendUint64(dst, NumericKeyBits(f))
}

// AppendStringGroupKey appends the canonical key of a string,
// length-prefixed so concatenated keys stay unambiguous.
func AppendStringGroupKey(dst []byte, s string) []byte {
	dst = append(dst, 's')
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendTimeGroupKey appends the canonical key of a timestamp
// (nanoseconds since the epoch, location-insensitive like time.Equal).
func AppendTimeGroupKey(dst []byte, t time.Time) []byte {
	dst = append(dst, 't')
	return binary.BigEndian.AppendUint64(dst, uint64(t.UnixNano()))
}

// AppendGroupKey appends the value's canonical grouping key to dst and
// returns the extended slice. See the package comment block above for the
// encoding; GroupEqual is the matching equality.
func (v Value) AppendGroupKey(dst []byte) []byte {
	switch v.typ {
	case TypeNull:
		return AppendNullGroupKey(dst)
	case TypeBool:
		return AppendBoolGroupKey(dst, v.b)
	case TypeInt:
		return AppendIntGroupKey(dst, v.i)
	case TypeFloat:
		return AppendFloatGroupKey(dst, v.f)
	case TypeString:
		return AppendStringGroupKey(dst, v.s)
	case TypeTime:
		return AppendTimeGroupKey(dst, v.t)
	default:
		return append(dst, '?')
	}
}

// GroupEqual reports whether two values fall in the same group under the
// canonical key: it is exactly key equality (NULL equals NULL, 1 equals
// 1.0, NaN equals NaN, -0.0 differs from +0.0), computed without building
// the keys.
func (v Value) GroupEqual(o Value) bool {
	if v.typ == TypeNull || o.typ == TypeNull {
		return v.typ == o.typ
	}
	if v.typ.Numeric() && o.typ.Numeric() {
		return NumericKeyBits(v.AsFloat()) == NumericKeyBits(o.AsFloat())
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeBool:
		return v.b == o.b
	case TypeString:
		return v.s == o.s
	case TypeTime:
		return v.t.UnixNano() == o.t.UnixNano()
	default:
		return false
	}
}

// WireSize estimates the number of bytes needed to ship the value between
// nodes of the vertical architecture. The network simulator uses it to
// account traffic on each link.
func (v Value) WireSize() int {
	switch v.typ {
	case TypeNull:
		return 1
	case TypeBool:
		return 1
	case TypeInt, TypeFloat, TypeTime:
		return 8
	case TypeString:
		return 2 + len(v.s)
	default:
		return 1
	}
}

// ParseValue converts raw text into the given type. It is used by the CSV
// importer and the CLI tools.
func ParseValue(s string, t Type) (Value, error) {
	if s == "" || strings.EqualFold(s, "null") {
		return Null(), nil
	}
	switch t {
	case TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("schema: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case TypeInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("schema: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("schema: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case TypeString:
		return String(s), nil
	case TypeTime:
		ts, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return Null(), fmt.Errorf("schema: parse time %q: %w", s, err)
		}
		return Time(ts), nil
	default:
		return Null(), fmt.Errorf("schema: cannot parse into %s", t)
	}
}
