package schema

// This file defines the structured scan predicate: the narrow language the
// storage layer understands well enough to consult zone maps with. A scan's
// Filter (row path) and the engine's filter kernels (columnar path) remain
// the authoritative predicate evaluation — ColPred is a *pruning hint*, a
// conservative re-statement of the kernelizable conjunct prefix over base
// table column positions. Storage may use it to skip whole segments whose
// zone maps prove no row can pass; it must never use it to admit rows.
//
// Soundness contract (mirrors the kernel chain in engine/veckernel.go):
//
//   - Predicate lists the scan's filter conjuncts in evaluation order,
//     restricted to the kernelizable prefix. The conjunct behind the first
//     non-kernelizable one must not appear — the row path would have
//     short-circuited rows (or raised errors) the earlier conjunct sees
//     first, and pruning on a later conjunct could skip those effects.
//   - A segment may be skipped only when some conjunct is provably FALSE
//     (not NULL, not an error) for every row of the segment, and every
//     conjunct before it is provably total (cannot error) on the segment.
//     NULL comparisons are NULL, not FALSE; NaN and cross-type comparisons
//     error — zone maps must prove their absence before pruning.

// PredOp is the comparison operator of one structured conjunct.
type PredOp uint8

// The structured predicate operators. The comparison set mirrors the
// kernelizable comparisons; PredIsNull/PredNotNull mirror IS [NOT] NULL.
const (
	PredEq PredOp = iota
	PredNe
	PredLt
	PredLe
	PredGt
	PredGe
	PredIsNull
	PredNotNull
)

// String names the operator for diagnostics.
func (op PredOp) String() string {
	switch op {
	case PredEq:
		return "="
	case PredNe:
		return "<>"
	case PredLt:
		return "<"
	case PredLe:
		return "<="
	case PredGt:
		return ">"
	case PredGe:
		return ">="
	case PredIsNull:
		return "IS NULL"
	case PredNotNull:
		return "IS NOT NULL"
	}
	return "?"
}

// ColPred is one structured conjunct over the scanned base relation:
// `col OP literal`, `col OP col2`, or `col IS [NOT] NULL`. Column positions
// index the base table's full-width layout (not the scan's projection).
type ColPred struct {
	// Op is the comparison; comparisons are normalized column-on-the-left
	// (`5 < x` arrives as x > 5).
	Op PredOp
	// Col is the left column's position in the base relation.
	Col int
	// RCol is the right column's position for column-vs-column conjuncts;
	// -1 when the right side is the literal Lit.
	RCol int
	// Lit is the right-hand literal when RCol < 0. A NULL literal encodes a
	// comparison whose result is NULL for every row (never prunable, never
	// an error).
	Lit Value
}

// ColScan describes a pushed-down columnar scan: which columns to serve,
// the structured pruning predicate, and the batch size. It is the columnar
// twin of Scan — there is no Filter because columnar consumers run their
// own kernels; Predicate carries the same pruning hint.
type ColScan struct {
	// Columns selects base-relation positions in output order; nil keeps
	// every column.
	Columns []int
	// Predicate is the structured pruning hint (see ColPred). Storage may
	// skip segments it proves empty of matches; consumers still filter.
	Predicate []ColPred
	// BatchSize caps rows per pull; <= 0 means DefaultBatchSize.
	BatchSize int
}
