package plan_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paradise/internal/plan"
)

// update regenerates the golden files:
//
//	go test ./internal/plan/ -run TestOptimizedPlanGoldens -update
var update = flag.Bool("update", false, "rewrite golden plan snapshots")

// goldenQueries is the snapshot corpus: every optimizer rule (folding,
// pushdown, join-side split, cross-block migration, pruning) appears in at
// least one optimized tree, so any unintended change to block decomposition
// or requirement analysis shows up as a readable plan diff.
var goldenQueries = []struct {
	name       string
	sql        string
	crossBlock bool
}{
	{"filter_into_scan", "SELECT x FROM d WHERE z < 1 AND t > 2", false},
	{"constant_folding", "SELECT x FROM d WHERE x > 1 + 2 AND 1 < 2", false},
	{"projection_pruning", "SELECT x + y AS s FROM d WHERE z < 1", false},
	{"star_no_pruning", "SELECT * FROM d WHERE z < 1", false},
	{"grouped_pruning", "SELECT cell, AVG(z) AS za FROM d GROUP BY cell HAVING SUM(z) > 1", false},
	{"count_star_pruning", "SELECT COUNT(*) FROM d WHERE z < 1", false},
	{"orderby_reachback", "SELECT x AS a FROM d ORDER BY z LIMIT 3", false},
	{"join_side_pushdown", "SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1 AND cells.label = 'room'", false},
	{"left_join_keeps_filter", "SELECT d.x FROM d LEFT JOIN cells ON d.cell = cells.cell WHERE cells.label = 'room'", false},
	{"derived_block_boundary", "SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3", false},
	{"cross_block_migration", "SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3", true},
	{"cross_block_ambiguous_bails", "SELECT z FROM (SELECT x AS s, y AS s, z FROM d) WHERE s > 3", true},
	{"window_block", "SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d WHERE x > y", false},
	{"distinct_sort_limit", "SELECT DISTINCT x FROM d WHERE z < 1 ORDER BY x DESC LIMIT 3", false},
}

// TestOptimizedPlanGoldens snapshots the optimized logical plan trees. A
// failure means block decomposition, requirement analysis or an optimizer
// rule changed shape: inspect the diff, and only regenerate with -update
// when the change is intended.
func TestOptimizedPlanGoldens(t *testing.T) {
	for _, c := range goldenQueries {
		t.Run(c.name, func(t *testing.T) {
			root := plan.Optimize(mustLower(t, c.sql),
				plan.Options{Catalog: testCatalog(), CrossBlock: c.crossBlock})
			got := "-- " + c.sql + "\n" + plan.String(root)

			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("optimized plan changed (re-run with -update if intended):\n got:\n%s\nwant:\n%s",
					indent(got), indent(string(want)))
			}
		})
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
