package plan

import (
	"math"
	"strings"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// This file is the cardinality- and traffic-cost model over the plan IR.
// It turns per-column base statistics (rows, NDV, min/max, average wire
// bytes — see storage's incremental accumulators) into estimated output
// rows and bytes for any plan node, using the textbook selectivity rules:
// equality 1/NDV, ranges by min/max interpolation, equi-joins by the
// larger NDV, everything capped by its input and clamped to a sane range.
// The fragmenter's placement search and the optimizer's join reordering
// both rank alternatives with it; network.Run's measured Figure 3
// accounting is its ground truth (pinned by the modeled-vs-measured
// harness in internal/fragment).

// defaultSel is the selectivity assumed for predicates the model cannot
// analyze (expressions over multiple columns, LIKE, CASE, ...).
const defaultSel = 1.0 / 3

// exprBytes is the assumed average wire size of a computed expression
// value (numbers ship in 8 bytes plus bookkeeping).
const exprBytes = 8

// Hist is the estimator's view of a value-distribution histogram: enough
// to turn a range bound into a fraction of rows. The storage layer's
// equi-width segment histograms satisfy it; plan never learns the bucket
// layout.
type Hist interface {
	// FracBelow estimates the fraction of counted values strictly below v:
	// 0 at or below the histogram's minimum, 1 above its maximum.
	FracBelow(v float64) float64
	// Total is the number of counted values (0 means no information).
	Total() int64
}

// ColStats summarizes one column for estimation.
type ColStats struct {
	// NDV is the estimated number of distinct non-null values (>= 1 when
	// any value was observed).
	NDV float64
	// NullFrac is the fraction of rows with a NULL in this column.
	NullFrac float64
	// Min/Max bound the numeric values; meaningful only when HasRange.
	HasRange bool
	Min, Max float64
	// AvgBytes is the mean wire size of one value.
	AvgBytes float64
	// Hist, when non-nil, refines range selectivities with the column's
	// measured distribution instead of uniform min/max interpolation.
	Hist Hist
}

// TableStats describes one relation (base table or derived stage output)
// for estimation: its cardinality and per-column summaries. Cols is keyed
// by lower-cased column name; scans additionally register the qualified
// "alias.name" spelling so predicates over joins resolve their side.
type TableStats struct {
	Rows float64
	// RowBytes is the average serialized row width.
	RowBytes float64
	Cols     map[string]ColStats
}

// Col resolves a column reference against the stats, trying the qualified
// spelling first.
func (t *TableStats) Col(ref *sqlparser.ColumnRef) (ColStats, bool) {
	if t == nil || t.Cols == nil {
		return ColStats{}, false
	}
	if ref.Table != "" {
		c, ok := t.Cols[strings.ToLower(ref.Table)+"."+strings.ToLower(ref.Name)]
		if ok {
			return c, true
		}
		return ColStats{}, false
	}
	c, ok := t.Cols[strings.ToLower(ref.Name)]
	return c, ok
}

// Stats resolves base-relation statistics by table name; ok is false for
// unknown tables (the estimator then falls back to neutral defaults). It
// mirrors the Catalog function type: the storage layer provides one
// without plan importing storage.
type Stats func(table string) (*TableStats, bool)

// Cardinality is an estimated operator output: how many rows, how many
// serialized bytes. It is the unit of the placement search's cost — bytes
// crossing a level boundary.
type Cardinality struct {
	Rows  float64
	Bytes float64
}

// Estimate predicts the output cardinality of the plan rooted at n.
// Estimates are always finite, non-negative, and bounded by the cross
// product of the base relations involved; a scan with no predicate is
// exact. A nil stats source degrades to neutral defaults rather than
// failing — the model never makes execution impossible.
func Estimate(n Node, stats Stats) Cardinality {
	ts := Derive(n, stats)
	return Cardinality{Rows: ts.Rows, Bytes: ts.Rows * ts.RowBytes}
}

// Derive computes the full statistical description of the plan's output —
// cardinality plus per-column stats — so stage outputs can feed the next
// stage's estimate (the fragment chain reads stage k's Derive as stage
// k+1's base stats).
func Derive(n Node, stats Stats) *TableStats {
	ts := deriveNode(n, stats)
	sanitize(ts)
	return ts
}

// sanitize clamps a derived table description to the estimator's
// guarantees: finite non-negative rows and widths, NDVs within [0, rows].
func sanitize(ts *TableStats) {
	ts.Rows = clampNonNeg(ts.Rows)
	ts.RowBytes = clampNonNeg(ts.RowBytes)
	for k, c := range ts.Cols {
		c.NDV = clampNonNeg(c.NDV)
		if c.NDV > ts.Rows {
			c.NDV = ts.Rows
		}
		if ts.Rows > 0 && c.NDV < 1 {
			c.NDV = 1
		}
		c.NullFrac = clamp01(c.NullFrac)
		c.AvgBytes = clampNonNeg(c.AvgBytes)
		ts.Cols[k] = c
	}
}

func clampNonNeg(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if math.IsInf(f, 1) {
		return math.MaxFloat64
	}
	return f
}

func clamp01(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func deriveNode(n Node, stats Stats) *TableStats {
	switch x := n.(type) {
	case *Scan:
		return deriveScan(x, stats)
	case *Values:
		return &TableStats{Rows: 1, RowBytes: 1, Cols: map[string]ColStats{}}
	case *Derived:
		return deriveDerived(x, stats)
	case *Join:
		return deriveJoin(x, stats)
	case *Filter:
		in := deriveNode(x.Input, stats)
		applyFilter(in, x.Cond)
		return in
	case *Project:
		in := deriveNode(x.Input, stats)
		return deriveItems(in, x.Items)
	case *Aggregate:
		return deriveAggregate(x, stats)
	case *Window:
		in := deriveNode(x.Input, stats)
		out := deriveItems(in, x.Items)
		out.Rows = in.Rows // windows never change cardinality
		return out
	case *Distinct:
		in := deriveNode(x.Input, stats)
		in.Rows = distinctRows(in)
		return in
	case *Sort:
		return deriveNode(x.Input, stats)
	case *Limit:
		in := deriveNode(x.Input, stats)
		if f := float64(x.N); f < in.Rows {
			in.Rows = f
		}
		return in
	default:
		// Unknown operator: neutral single-row default keeps the model total.
		return &TableStats{Rows: 1, RowBytes: exprBytes, Cols: map[string]ColStats{}}
	}
}

// deriveScan builds the scan's output description from base statistics,
// applying the pushed-down predicate and the pruned projection.
func deriveScan(s *Scan, stats Stats) *TableStats {
	qual := strings.ToLower(s.Alias)
	if qual == "" {
		qual = strings.ToLower(s.Table)
	}
	var base *TableStats
	if stats != nil {
		if b, ok := stats(s.Table); ok && b != nil {
			base = b
		}
	}
	out := &TableStats{Cols: map[string]ColStats{}}
	if base == nil {
		// Unknown relation: a neutral default so estimation stays total.
		out.Rows = 1000
		out.RowBytes = 4 * exprBytes
	} else {
		out.Rows = base.Rows
		width := 0.0
		for name, c := range base.Cols {
			if strings.Contains(name, ".") {
				continue // base stats are keyed by bare names
			}
			keep := s.Columns == nil || nameIn(s.Columns, name)
			if keep {
				width += c.AvgBytes
			}
			// Register the column under bare and qualified spellings even
			// when pruned: the pushed predicate still references it.
			out.Cols[name] = c
			out.Cols[qual+"."+name] = c
		}
		if s.Columns == nil && base.RowBytes > 0 {
			width = base.RowBytes
		}
		out.RowBytes = width
	}
	if s.Predicate != nil {
		applyFilter(out, s.Predicate)
	}
	return out
}

// deriveDerived re-qualifies the inner block's output under the derived
// table's alias.
func deriveDerived(d *Derived, stats Stats) *TableStats {
	in := deriveNode(d.Input, stats)
	out := &TableStats{Rows: in.Rows, RowBytes: in.RowBytes, Cols: map[string]ColStats{}}
	alias := strings.ToLower(d.Alias)
	for name, c := range in.Cols {
		if strings.Contains(name, ".") {
			continue // inner qualifiers are out of scope above the boundary
		}
		out.Cols[name] = c
		if alias != "" {
			out.Cols[alias+"."+name] = c
		}
	}
	return out
}

// deriveJoin estimates a join: the cross product scaled by 1/max(NDV) per
// equi-join conjunct (the containment assumption), by defaultSel per
// residual conjunct, capped at the cross product; a LEFT join never
// returns fewer rows than its left input.
func deriveJoin(j *Join, stats Stats) *TableStats {
	l := deriveNode(j.Left, stats)
	r := deriveNode(j.Right, stats)
	out := &TableStats{
		RowBytes: l.RowBytes + r.RowBytes,
		Cols:     map[string]ColStats{},
	}
	// Right side wins bare-name collisions last — matches resolution being
	// ambiguous anyway; qualified keys never collide.
	for name, c := range l.Cols {
		out.Cols[name] = c
	}
	for name, c := range r.Cols {
		out.Cols[name] = c
	}
	cross := l.Rows * r.Rows
	rows := cross
	if j.On != nil {
		merged := &TableStats{Rows: cross, Cols: out.Cols}
		for _, c := range sqlparser.Conjuncts(j.On) {
			if lc, rc, ok := equiJoinCols(c, l, r); ok {
				ndv := math.Max(lc.NDV, rc.NDV)
				if ndv > 1 {
					rows /= ndv
				}
				continue
			}
			rows *= selectivity(c, merged)
		}
	}
	if rows > cross {
		rows = cross
	}
	if j.Type == sqlparser.JoinLeft && rows < l.Rows {
		rows = l.Rows
	}
	out.Rows = rows
	return out
}

// equiJoinCols recognizes `a = b` with one column per join side and
// returns both sides' column stats.
func equiJoinCols(c sqlparser.Expr, l, r *TableStats) (lc, rc ColStats, ok bool) {
	b, isBin := c.(*sqlparser.BinaryExpr)
	if !isBin || b.Op != sqlparser.OpEq {
		return ColStats{}, ColStats{}, false
	}
	cl, okL := b.L.(*sqlparser.ColumnRef)
	cr, okR := b.R.(*sqlparser.ColumnRef)
	if !okL || !okR {
		return ColStats{}, ColStats{}, false
	}
	if lc, ok = l.Col(cl); ok {
		if rc, ok = r.Col(cr); ok {
			return lc, rc, true
		}
		return ColStats{}, ColStats{}, false
	}
	// The conjunct may be spelled right = left.
	if lc, ok = l.Col(cr); ok {
		if rc, ok = r.Col(cl); ok {
			return lc, rc, true
		}
	}
	return ColStats{}, ColStats{}, false
}

// applyFilter scales the description by the predicate's selectivity and
// re-caps column NDVs; an equality against a literal collapses that
// column to a single value.
func applyFilter(ts *TableStats, cond sqlparser.Expr) {
	if cond == nil {
		return
	}
	sel := selectivity(cond, ts)
	ts.Rows *= sel
	for _, c := range sqlparser.Conjuncts(cond) {
		if ref, _, _, ok := colCompareLiteral(c, sqlparser.OpEq); ok {
			if cs, found := ts.Col(ref); found {
				cs.NDV = 1
				setCol(ts, ref, cs)
			}
		}
	}
	for k, c := range ts.Cols {
		if c.NDV > ts.Rows {
			c.NDV = ts.Rows
			ts.Cols[k] = c
		}
	}
}

// setCol updates a column's stats under every spelling that resolves to it.
func setCol(ts *TableStats, ref *sqlparser.ColumnRef, cs ColStats) {
	bare := strings.ToLower(ref.Name)
	for k := range ts.Cols {
		if k == bare || strings.HasSuffix(k, "."+bare) {
			ts.Cols[k] = cs
		}
	}
}

// selectivity estimates the fraction of rows satisfying the condition.
// Always in [0, 1].
func selectivity(cond sqlparser.Expr, ts *TableStats) float64 {
	return clamp01(selExpr(cond, ts))
}

func selExpr(e sqlparser.Expr, ts *TableStats) float64 {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			return selExpr(x.L, ts) * selExpr(x.R, ts)
		case sqlparser.OpOr:
			l, r := selExpr(x.L, ts), selExpr(x.R, ts)
			return l + r - l*r
		case sqlparser.OpEq, sqlparser.OpNeq, sqlparser.OpLt,
			sqlparser.OpLeq, sqlparser.OpGt, sqlparser.OpGeq:
			return selCompare(x, ts)
		default:
			return defaultSel
		}
	case *sqlparser.UnaryExpr:
		if x.Op == sqlparser.UnaryNot {
			return 1 - selExpr(x.X, ts)
		}
		return defaultSel
	case *sqlparser.IsNull:
		ref, ok := x.X.(*sqlparser.ColumnRef)
		if !ok {
			return defaultSel
		}
		c, found := ts.Col(ref)
		if !found {
			return defaultSel
		}
		if x.Not {
			return 1 - c.NullFrac
		}
		return c.NullFrac
	case *sqlparser.Between:
		s := selBetween(x, ts)
		if x.Not {
			return 1 - s
		}
		return s
	case *sqlparser.InList:
		ref, ok := x.X.(*sqlparser.ColumnRef)
		if !ok {
			return defaultSel
		}
		c, found := ts.Col(ref)
		if !found || c.NDV < 1 {
			return defaultSel
		}
		s := float64(len(x.List)) / c.NDV
		if x.Not {
			return 1 - s
		}
		return s
	case *sqlparser.Literal:
		// A bare boolean literal (TRUE keeps everything).
		if x.Value.Type() == schema.TypeBool {
			if x.Value.AsBool() {
				return 1
			}
			return 0
		}
		return defaultSel
	default:
		return defaultSel
	}
}

// selBetween interpolates `col BETWEEN lo AND hi` as one interval —
// (hi-lo)/width — rather than the product of its two bound conjuncts,
// which would double-count the restriction.
func selBetween(b *sqlparser.Between, ts *TableStats) float64 {
	ref, okX := b.X.(*sqlparser.ColumnRef)
	lo, okLo := b.Lo.(*sqlparser.Literal)
	hi, okHi := b.Hi.(*sqlparser.Literal)
	if okX && okLo && okHi && lo.Value.Type().Numeric() && hi.Value.Type().Numeric() {
		if c, found := ts.Col(ref); found && c.HasRange {
			if c.Hist != nil && c.Hist.Total() > 0 {
				// BETWEEN hi is inclusive; nudging past hi approximates <=
				// at histogram granularity.
				span := c.Hist.FracBelow(math.Nextafter(hi.Value.AsFloat(), math.Inf(1))) -
					c.Hist.FracBelow(lo.Value.AsFloat())
				return clamp01(span)
			}
			width := c.Max - c.Min
			if width <= 0 {
				if lo.Value.AsFloat() <= c.Min && c.Min <= hi.Value.AsFloat() {
					return 1
				}
				return 0
			}
			span := math.Min(hi.Value.AsFloat(), c.Max) - math.Max(lo.Value.AsFloat(), c.Min)
			return clamp01(span / width)
		}
	}
	// Fall back to the two bound conjuncts under independence.
	loC := &sqlparser.BinaryExpr{Op: sqlparser.OpGeq, L: b.X, R: b.Lo}
	hiC := &sqlparser.BinaryExpr{Op: sqlparser.OpLeq, L: b.X, R: b.Hi}
	return selExpr(loC, ts) * selExpr(hiC, ts)
}

// selCompare handles a comparison conjunct: column vs literal uses NDV or
// range interpolation, column vs column uses 1/max NDV.
func selCompare(b *sqlparser.BinaryExpr, ts *TableStats) float64 {
	if ref, lit, op, ok := colCompareLiteral(b, b.Op); ok {
		c, found := ts.Col(ref)
		if !found {
			return defaultSel
		}
		switch op {
		case sqlparser.OpEq:
			if c.NDV >= 1 {
				return 1 / c.NDV
			}
			return defaultSel
		case sqlparser.OpNeq:
			if c.NDV >= 1 {
				return 1 - 1/c.NDV
			}
			return defaultSel
		default:
			return selRange(c, op, lit)
		}
	}
	// column-vs-column on one relation (e.g. x > y): equality by
	// 1/max NDV, inequalities by the default.
	cl, okL := b.L.(*sqlparser.ColumnRef)
	cr, okR := b.R.(*sqlparser.ColumnRef)
	if okL && okR && b.Op == sqlparser.OpEq {
		sl, foundL := ts.Col(cl)
		sr, foundR := ts.Col(cr)
		if foundL && foundR {
			if ndv := math.Max(sl.NDV, sr.NDV); ndv >= 1 {
				return 1 / ndv
			}
		}
	}
	return defaultSel
}

// colCompareLiteral matches `col OP literal` (either spelling) for the
// given comparison. The returned operator is normalized to the
// column-on-the-left form: `5 < x` comes back as (x, 5, OpGt).
func colCompareLiteral(e sqlparser.Expr, want sqlparser.BinaryOp) (*sqlparser.ColumnRef, schema.Value, sqlparser.BinaryOp, bool) {
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok || b.Op != want {
		return nil, schema.Value{}, 0, false
	}
	if ref, okL := b.L.(*sqlparser.ColumnRef); okL {
		if lit, okR := b.R.(*sqlparser.Literal); okR {
			return ref, lit.Value, b.Op, true
		}
	}
	if ref, okR := b.R.(*sqlparser.ColumnRef); okR {
		if lit, okL := b.L.(*sqlparser.Literal); okL {
			return ref, lit.Value, mirrorOp(b.Op), true
		}
	}
	return nil, schema.Value{}, 0, false
}

// mirrorOp swaps a comparison's sides: literal OP col == col mirror(OP)
// literal.
func mirrorOp(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLeq:
		return sqlparser.OpGeq
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGeq:
		return sqlparser.OpLeq
	}
	return op
}

// selRange interpolates a range predicate's selectivity from the column's
// min/max. The comparison is taken as column-on-the-left; when the
// literal was on the left the caller's operator is mirrored, which at
// this estimation granularity changes the answer by at most the
// single-point mass — acceptable for a model whose default is 1/3.
func selRange(c ColStats, op sqlparser.BinaryOp, lit schema.Value) float64 {
	if !c.HasRange || !lit.Type().Numeric() {
		return defaultSel
	}
	v := lit.AsFloat()
	if c.Hist != nil && c.Hist.Total() > 0 {
		// Histogram path: the measured distribution replaces the uniform
		// assumption. <= and < differ by at most one value's mass, below
		// this model's resolution; the bucket interpolation absorbs it.
		switch op {
		case sqlparser.OpLt, sqlparser.OpLeq:
			return clamp01(c.Hist.FracBelow(v))
		case sqlparser.OpGt, sqlparser.OpGeq:
			return clamp01(1 - c.Hist.FracBelow(v))
		}
		return defaultSel
	}
	width := c.Max - c.Min
	if width <= 0 {
		// Single-point column: the predicate either keeps it or not.
		switch op {
		case sqlparser.OpLt:
			if c.Min < v {
				return 1
			}
		case sqlparser.OpLeq:
			if c.Min <= v {
				return 1
			}
		case sqlparser.OpGt:
			if c.Min > v {
				return 1
			}
		case sqlparser.OpGeq:
			if c.Min >= v {
				return 1
			}
		}
		return 0
	}
	frac := (v - c.Min) / width
	switch op {
	case sqlparser.OpLt, sqlparser.OpLeq:
		return clamp01(frac)
	case sqlparser.OpGt, sqlparser.OpGeq:
		return clamp01(1 - frac)
	}
	return defaultSel
}

// deriveItems computes the output description of a select list (Project,
// Window, Aggregate items): row width from the items, column stats
// propagated for plain column references under their output names.
func deriveItems(in *TableStats, items []sqlparser.SelectItem) *TableStats {
	out := &TableStats{Rows: in.Rows, Cols: map[string]ColStats{}}
	width := 0.0
	for i, it := range items {
		if _, isStar := it.Expr.(*sqlparser.Star); isStar {
			width += in.RowBytes
			for name, c := range in.Cols {
				if !strings.Contains(name, ".") {
					out.Cols[name] = c
				}
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		key := strings.ToLower(name)
		if ref, isCol := it.Expr.(*sqlparser.ColumnRef); isCol {
			if c, found := in.Col(ref); found {
				out.Cols[key] = c
				width += c.AvgBytes
				continue
			}
		}
		// Computed expression: assume a numeric-sized value, distinctness
		// unknown (rows is the safe bound, applied by sanitize).
		out.Cols[key] = ColStats{NDV: in.Rows, AvgBytes: exprBytes}
		width += exprBytes
	}
	out.RowBytes = width
	return out
}

// deriveAggregate estimates group count as the product of the group-by
// columns' NDVs, capped at the input cardinality (every input row its own
// group is the worst case); the single-group form returns exactly one row.
func deriveAggregate(a *Aggregate, stats Stats) *TableStats {
	in := deriveNode(a.Input, stats)
	out := deriveItems(in, a.Items)
	if len(a.GroupBy) == 0 {
		out.Rows = math.Min(1, math.Ceil(in.Rows))
	} else {
		groups := 1.0
		for _, g := range a.GroupBy {
			ref, ok := g.(*sqlparser.ColumnRef)
			if !ok {
				groups *= math.Max(1, in.Rows*defaultSel)
				continue
			}
			if c, found := in.Col(ref); found && c.NDV >= 1 {
				groups *= c.NDV
			} else {
				groups *= math.Max(1, in.Rows*defaultSel)
			}
		}
		if groups > in.Rows {
			groups = in.Rows
		}
		out.Rows = groups
	}
	if a.Having != nil {
		out.Rows *= selectivity(a.Having, out)
	}
	return out
}

// distinctRows caps the row count by the product of the output columns'
// NDVs.
func distinctRows(in *TableStats) float64 {
	prod := 1.0
	any := false
	for name, c := range in.Cols {
		if strings.Contains(name, ".") {
			continue
		}
		any = true
		prod *= math.Max(1, c.NDV)
		if prod >= in.Rows {
			return in.Rows
		}
	}
	if !any {
		return in.Rows
	}
	return math.Min(prod, in.Rows)
}
