package plan

import (
	"fmt"

	"paradise/internal/sqlparser"
)

// FromAST lowers a parsed SELECT statement into the logical operator tree.
// The input AST is not modified or aliased: every expression is deep-copied,
// so the plan can be rewritten freely while the AST keeps rendering the
// original SQL.
//
// Lowering order fixes the operator semantics the engine implements:
//
//	Scan/Join/Derived/Values → Filter(WHERE)
//	  → Aggregate(GROUP BY/HAVING/aggregated items)
//	  | Window(items with OVER)
//	  | Project(items)
//	  → Distinct → Sort → Limit
func FromAST(sel *sqlparser.Select) (Node, error) {
	if sel == nil {
		return nil, fmt.Errorf("%w: nil statement", ErrPlan)
	}
	if sel.Where != nil && sqlparser.ContainsAggregate(sel.Where) {
		return nil, fmt.Errorf("%w: aggregate in WHERE clause", ErrPlan)
	}

	n, err := lowerFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		n = &Filter{Input: n, Cond: sqlparser.CloneExpr(sel.Where)}
	}

	items := cloneItems(sel.Items)
	grouped := len(sel.GroupBy) > 0 || sel.Having != nil || itemsContainAggregate(sel.Items)
	switch {
	case grouped:
		n = &Aggregate{
			Input:   n,
			GroupBy: cloneExprs(sel.GroupBy),
			Items:   items,
			Having:  sqlparser.CloneExpr(sel.Having),
		}
	case itemsContainWindow(sel.Items):
		n = &Window{Input: n, Items: items}
	default:
		n = &Project{Input: n, Items: items}
	}

	if sel.Distinct {
		n = &Distinct{Input: n}
	}
	if len(sel.OrderBy) > 0 {
		n = &Sort{Input: n, By: cloneOrder(sel.OrderBy)}
	}
	if sel.Limit != nil {
		n = &Limit{Input: n, N: *sel.Limit}
	}
	return n, nil
}

func lowerFrom(t sqlparser.TableRef) (Node, error) {
	switch x := t.(type) {
	case nil:
		return &Values{}, nil
	case *sqlparser.TableName:
		return &Scan{Table: x.Name, Alias: x.Alias}, nil
	case *sqlparser.Subquery:
		inner, err := FromAST(x.Select)
		if err != nil {
			return nil, err
		}
		return &Derived{Input: inner, Alias: x.Alias}, nil
	case *sqlparser.Join:
		l, err := lowerFrom(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := lowerFrom(x.Right)
		if err != nil {
			return nil, err
		}
		return &Join{Type: x.Type, Left: l, Right: r, On: sqlparser.CloneExpr(x.On)}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported FROM item %T", ErrPlan, t)
	}
}

// ToSelect renders a plan back into an equivalent SELECT statement — the SQL
// surface of a plan subtree. Fragment stages use it so every pushed-down
// piece still has a printable (and re-parseable) query; optimizer artifacts
// that do not change the result (pruned Scan.Columns) are not rendered.
// Predicates pushed into scans come back as WHERE conjuncts.
func ToSelect(root Node) (*sqlparser.Select, error) {
	blk, src := SplitBlock(root)
	sel := &sqlparser.Select{}

	if blk.Limit != nil {
		n := blk.Limit.N
		sel.Limit = &n
	}
	if blk.Sort != nil {
		sel.OrderBy = cloneOrder(blk.Sort.By)
	}
	sel.Distinct = blk.Distinct != nil

	switch {
	case blk.Agg != nil:
		sel.Items = cloneItems(blk.Agg.Items)
		sel.GroupBy = cloneExprs(blk.Agg.GroupBy)
		sel.Having = sqlparser.CloneExpr(blk.Agg.Having)
	default:
		sel.Items = cloneItems(blk.Items())
	}

	// Residual filters, innermost first, behind any scan-pushed predicate:
	// together they re-form the WHERE clause in original conjunct order.
	var conds []sqlparser.Expr
	for _, c := range blk.FilterConds() {
		conds = append(conds, sqlparser.CloneExpr(c))
	}
	from, scanPred, err := toTableRef(src)
	if err != nil {
		return nil, err
	}
	sel.From = from
	if scanPred != nil {
		conds = append([]sqlparser.Expr{scanPred}, conds...)
	}
	sel.Where = sqlparser.AndAll(conds)
	return sel, nil
}

// toTableRef renders a source subtree as a FROM item, surfacing any
// scan-pushed predicate so it can rejoin the WHERE clause.
func toTableRef(n Node) (sqlparser.TableRef, sqlparser.Expr, error) {
	switch x := n.(type) {
	case *Values:
		return nil, nil, nil
	case *Scan:
		return &sqlparser.TableName{Name: x.Table, Alias: x.Alias}, sqlparser.CloneExpr(x.Predicate), nil
	case *Derived:
		inner, err := ToSelect(x.Input)
		if err != nil {
			return nil, nil, err
		}
		return &sqlparser.Subquery{Select: inner, Alias: x.Alias}, nil, nil
	case *Join:
		l, lp, err := toTableRef(x.Left)
		if err != nil {
			return nil, nil, err
		}
		r, rp, err := toTableRef(x.Right)
		if err != nil {
			return nil, nil, err
		}
		return &sqlparser.Join{Type: x.Type, Left: l, Right: r, On: sqlparser.CloneExpr(x.On)},
			sqlparser.And(lp, rp), nil
	case *Filter:
		// A filter pushed onto one join side: fold it into the surfaced
		// predicate of that side's source.
		ref, p, err := toTableRef(x.Input)
		if err != nil {
			return nil, nil, err
		}
		return ref, sqlparser.And(p, sqlparser.CloneExpr(x.Cond)), nil
	default:
		// A bare operator chain used as a source (no Derived marker):
		// render it as an anonymous derived table.
		inner, err := ToSelect(n)
		if err != nil {
			return nil, nil, err
		}
		return &sqlparser.Subquery{Select: inner}, nil, nil
	}
}

func itemsContainAggregate(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if sqlparser.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func itemsContainWindow(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if sqlparser.ContainsWindow(it.Expr) {
			return true
		}
	}
	return false
}

func cloneItems(items []sqlparser.SelectItem) []sqlparser.SelectItem {
	out := make([]sqlparser.SelectItem, len(items))
	for i, it := range items {
		out[i] = sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: it.Alias}
	}
	return out
}

func cloneExprs(es []sqlparser.Expr) []sqlparser.Expr {
	if es == nil {
		return nil
	}
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.CloneExpr(e)
	}
	return out
}

func cloneOrder(os []sqlparser.OrderItem) []sqlparser.OrderItem {
	if os == nil {
		return nil
	}
	out := make([]sqlparser.OrderItem, len(os))
	for i, o := range os {
		out[i] = sqlparser.OrderItem{Expr: sqlparser.CloneExpr(o.Expr), Desc: o.Desc}
	}
	return out
}
