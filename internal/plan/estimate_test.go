package plan_test

import (
	"math"
	"math/rand"
	"testing"

	"paradise/internal/plan"
)

// testStats is a hand-built statistics source over the bench tables:
// d has 1000 rows (x,y,z uniform floats over [0,10], t ints 0..999,
// cell one of 10), cells has 10 rows.
func testStats() plan.Stats {
	d := &plan.TableStats{
		Rows:     1000,
		RowBytes: 42,
		Cols: map[string]plan.ColStats{
			"x":    {NDV: 1000, HasRange: true, Min: 0, Max: 10, AvgBytes: 8},
			"y":    {NDV: 1000, HasRange: true, Min: 0, Max: 10, AvgBytes: 8},
			"z":    {NDV: 1000, HasRange: true, Min: 0, Max: 10, AvgBytes: 8},
			"t":    {NDV: 1000, HasRange: true, Min: 0, Max: 999, AvgBytes: 8},
			"cell": {NDV: 10, AvgBytes: 10},
		},
	}
	cells := &plan.TableStats{
		Rows:     10,
		RowBytes: 20,
		Cols: map[string]plan.ColStats{
			"cell":  {NDV: 10, AvgBytes: 10},
			"label": {NDV: 5, AvgBytes: 10},
		},
	}
	m := map[string]*plan.TableStats{"d": d, "cells": cells}
	return func(name string) (*plan.TableStats, bool) {
		ts, ok := m[name]
		return ts, ok
	}
}

func estimateSQL(t *testing.T, sql string) plan.Cardinality {
	t.Helper()
	root := plan.Optimize(mustLower(t, sql), plan.Options{Catalog: testCatalog()})
	return plan.Estimate(root, testStats())
}

// TestEstimateScanExact: a scan with no predicate is exact in rows.
func TestEstimateScanExact(t *testing.T) {
	card := estimateSQL(t, "SELECT * FROM d")
	if card.Rows != 1000 {
		t.Fatalf("rows = %v, want exactly 1000", card.Rows)
	}
	if card.Bytes != 1000*42 {
		t.Fatalf("bytes = %v, want %v", card.Bytes, 1000*42)
	}
}

// TestEstimateEquality: col = lit selects 1/NDV of the rows.
func TestEstimateEquality(t *testing.T) {
	card := estimateSQL(t, "SELECT * FROM d WHERE cell = 'c3'")
	if got, want := card.Rows, 100.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("rows = %v, want %v (1000/10)", got, want)
	}
}

// TestEstimateRange: range predicates interpolate over min/max, in either
// literal position.
func TestEstimateRange(t *testing.T) {
	for _, c := range []struct {
		sql  string
		want float64
	}{
		{"SELECT * FROM d WHERE x < 2.5", 250},
		{"SELECT * FROM d WHERE x > 7.5", 250},
		{"SELECT * FROM d WHERE 7.5 < x", 250}, // mirrored spelling
		{"SELECT * FROM d WHERE x BETWEEN 2 AND 4", 200},
	} {
		card := estimateSQL(t, c.sql)
		if math.Abs(card.Rows-c.want) > 1 {
			t.Errorf("%s: rows = %v, want ~%v", c.sql, card.Rows, c.want)
		}
	}
}

// TestEstimateConjunction: conjuncts multiply.
func TestEstimateConjunction(t *testing.T) {
	card := estimateSQL(t, "SELECT * FROM d WHERE x < 5 AND cell = 'c1'")
	if got, want := card.Rows, 50.0; math.Abs(got-want) > 1 {
		t.Fatalf("rows = %v, want ~%v", got, want)
	}
}

// TestEstimateJoin: equi-join scales the cross product by 1/max(NDV).
func TestEstimateJoin(t *testing.T) {
	card := estimateSQL(t, "SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell")
	// 1000 * 10 / max(10, 10) = 1000
	if got, want := card.Rows, 1000.0; math.Abs(got-want) > 1 {
		t.Fatalf("rows = %v, want ~%v", got, want)
	}
}

// TestEstimateLeftJoinFloor: a LEFT join never drops below its left input.
func TestEstimateLeftJoinFloor(t *testing.T) {
	card := estimateSQL(t, "SELECT d.x FROM d LEFT JOIN cells ON d.cell = cells.cell WHERE cells.label = 'room'")
	if card.Rows < 200 { // filter above join scales the floor's result, not below 1000*0.2
		t.Fatalf("rows = %v, implausibly low for a LEFT join over 1000 rows", card.Rows)
	}
}

// TestEstimateAggregate: group count is the NDV product, capped at input.
func TestEstimateAggregate(t *testing.T) {
	card := estimateSQL(t, "SELECT cell, AVG(z) AS za FROM d GROUP BY cell")
	if got, want := card.Rows, 10.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("rows = %v, want %v groups", got, want)
	}
	one := estimateSQL(t, "SELECT COUNT(*) FROM d")
	if one.Rows != 1 {
		t.Fatalf("single-group aggregate rows = %v, want 1", one.Rows)
	}
}

// TestEstimateDistinctAndLimit: Distinct caps by NDV product, Limit by N.
func TestEstimateDistinctAndLimit(t *testing.T) {
	card := estimateSQL(t, "SELECT DISTINCT cell FROM d")
	if got, want := card.Rows, 10.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("distinct rows = %v, want %v", got, want)
	}
	card = estimateSQL(t, "SELECT x FROM d LIMIT 7")
	if card.Rows != 7 {
		t.Fatalf("limit rows = %v, want 7", card.Rows)
	}
}

// TestEstimateUnknownTable: estimation stays total without statistics.
func TestEstimateUnknownTable(t *testing.T) {
	root := mustLower(t, "SELECT * FROM mystery WHERE a > 1")
	card := plan.Estimate(root, testStats())
	if card.Rows < 0 || math.IsNaN(card.Rows) || math.IsInf(card.Rows, 0) {
		t.Fatalf("rows = %v, want finite non-negative default", card.Rows)
	}
	card = plan.Estimate(mustLower(t, "SELECT * FROM d"), nil)
	if card.Rows < 0 || math.IsNaN(card.Rows) {
		t.Fatalf("nil stats source: rows = %v", card.Rows)
	}
}

// fuzzCorpus is the query-shape pool the estimator fuzz round draws from:
// every operator of the IR appears, several with join and derived shapes.
var fuzzCorpus = []string{
	"SELECT * FROM d",
	"SELECT x, y FROM d WHERE x > 3 AND y < 9",
	"SELECT x FROM d WHERE cell = 'c1' OR z >= 5",
	"SELECT x FROM d WHERE NOT (x < 2) AND z BETWEEN 1 AND 3",
	"SELECT cell, COUNT(*) AS n FROM d GROUP BY cell HAVING COUNT(*) > 2",
	"SELECT COUNT(*) FROM d WHERE t IN (1, 2, 3)",
	"SELECT DISTINCT cell FROM d WHERE x IS NOT NULL",
	"SELECT x FROM d ORDER BY z DESC LIMIT 5",
	"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1",
	"SELECT d.x FROM d LEFT JOIN cells ON d.cell = cells.cell",
	"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3",
	"SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d WHERE x > y",
	"SELECT x + y AS s FROM d WHERE x = y",
}

// TestEstimateFuzz runs every corpus shape against randomly perturbed
// statistics — including adversarial NDVs, inverted ranges, NaN/Inf
// widths — and asserts the estimator's hard guarantees: no panics, always
// finite, non-negative, and never above the cross product of the base
// relations.
func TestEstimateFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		dRows := float64(rng.Intn(5000))
		cellRows := float64(rng.Intn(100))
		perturb := func(c plan.ColStats) plan.ColStats {
			switch rng.Intn(6) {
			case 0:
				c.NDV = -c.NDV // negative NDV
			case 1:
				c.NDV = 0
			case 2:
				c.Min, c.Max = c.Max, c.Min // inverted range
			case 3:
				c.AvgBytes = math.NaN()
			case 4:
				c.NDV = math.Inf(1)
			}
			return c
		}
		d := &plan.TableStats{
			Rows:     dRows,
			RowBytes: rng.Float64() * 100,
			Cols:     map[string]plan.ColStats{},
		}
		for _, name := range []string{"x", "y", "z", "t", "cell"} {
			d.Cols[name] = perturb(plan.ColStats{
				NDV:      float64(rng.Intn(2000)),
				HasRange: rng.Intn(2) == 0,
				Min:      rng.Float64() * 10,
				Max:      rng.Float64() * 20,
				AvgBytes: rng.Float64() * 30,
				NullFrac: rng.Float64() * 1.5, // may exceed 1
			})
		}
		cells := &plan.TableStats{
			Rows:     cellRows,
			RowBytes: 20,
			Cols: map[string]plan.ColStats{
				"cell":  perturb(plan.ColStats{NDV: 10, AvgBytes: 10}),
				"label": perturb(plan.ColStats{NDV: 5, AvgBytes: 10}),
			},
		}
		stats := func(name string) (*plan.TableStats, bool) {
			switch name {
			case "d":
				return d, true
			case "cells":
				return cells, true
			}
			return nil, false
		}
		for _, sql := range fuzzCorpus {
			root := plan.Optimize(mustLower(t, sql), plan.Options{Catalog: testCatalog()})
			card := plan.Estimate(root, stats)
			if math.IsNaN(card.Rows) || math.IsInf(card.Rows, 0) || card.Rows < 0 {
				t.Fatalf("trial %d %q: rows = %v", trial, sql, card.Rows)
			}
			if math.IsNaN(card.Bytes) || card.Bytes < 0 {
				t.Fatalf("trial %d %q: bytes = %v", trial, sql, card.Bytes)
			}
			bound := math.Max(dRows, 1) * math.Max(cellRows, 1)
			if card.Rows > bound+1e-9 {
				t.Fatalf("trial %d %q: rows %v above cross-product bound %v",
					trial, sql, card.Rows, bound)
			}
		}
	}
}
