package plan

import (
	"errors"
	"fmt"
	"strings"

	"paradise/internal/sqlparser"
)

// ErrPlan wraps lowering and plan-shape errors.
var ErrPlan = errors.New("plan: invalid plan")

// Provenance records why an operator (or one of its conjuncts/items) exists:
// straight from the user's query, or injected by the privacy rewriter. It is
// what lets a rewritten plan still report rule + columns on violations and
// render an audit-grade EXPLAIN.
type Provenance struct {
	// Origin is "policy" for operators the privacy rewriter introduced.
	Origin string
	// Module is the policy module that mandated the transformation.
	Module string
	// Rule names the policy rule ("selection control", "projection control",
	// "mandated aggregation", "compression").
	Rule string
	// Columns are the attributes the rule acted on.
	Columns []string
	// Detail carries the injected condition or enforced alias, rendered.
	Detail string
}

func (p Provenance) String() string {
	s := p.Origin
	if p.Module != "" {
		s += ":" + p.Module
	}
	s += " " + p.Rule
	if len(p.Columns) > 0 {
		s += " [" + strings.Join(p.Columns, ", ") + "]"
	}
	if p.Detail != "" {
		s += " (" + p.Detail + ")"
	}
	return s
}

// Node is one logical operator. Nodes form a tree: unary operators hold one
// Input, Join holds two, Scan and Values are leaves.
type Node interface {
	// Children returns the operator's inputs, left to right.
	Children() []Node
	// describe renders the one-line EXPLAIN form of the operator.
	describe() string
}

// Scan reads a named base relation (or, inside a fragment chain, the output
// of the previous stage). The optimizer narrows Columns (projection pruning)
// and fills Predicate (predicate pushdown); both travel into
// storage.Table.Scan so the store filters and projects before a single row
// reaches the engine.
type Scan struct {
	// Table names the relation.
	Table string
	// Alias qualifies column references ("" uses Table).
	Alias string
	// Columns is the pruned projection in output order; nil reads every
	// column.
	Columns []string
	// Predicate filters rows inside the scan. It is evaluated against the
	// full-width row (before Columns projects), so it may reference pruned
	// columns.
	Predicate sqlparser.Expr
	// Prov documents policy conjuncts that were pushed into Predicate.
	Prov []Provenance
}

// Values is the FROM-less SELECT source: exactly one empty row.
type Values struct{}

// Derived marks a query-block boundary: a derived table (FROM (SELECT ...))
// in the source SQL. The fragmenter splits chains at Derived nodes, so the
// paper's "innermost possible part of the nested query" stays addressable in
// plan form.
type Derived struct {
	Input Node
	Alias string
}

// Join combines two inputs. On is nil for cross joins.
type Join struct {
	Type        sqlparser.JoinType
	Left, Right Node
	On          sqlparser.Expr
}

// Filter keeps rows satisfying Cond.
type Filter struct {
	Input Node
	Cond  sqlparser.Expr
	// Prov documents conjuncts of Cond injected by the privacy rewriter.
	Prov []Provenance
}

// Project evaluates the select list (expressions, stars, aliases).
type Project struct {
	Input Node
	Items []sqlparser.SelectItem
	// Prov documents projection control: attributes the privacy rewriter
	// removed from the select list, and compression rewrites of items.
	Prov []Provenance
}

// Aggregate groups its input and evaluates an aggregated select list; Having
// filters groups. A nil GroupBy with aggregate items is the single-group
// form (SELECT COUNT(*) ...).
type Aggregate struct {
	Input   Node
	GroupBy []sqlparser.Expr
	Items   []sqlparser.SelectItem
	Having  sqlparser.Expr
	// Prov documents mandated aggregations and injected HAVING conjuncts.
	Prov []Provenance
}

// Window evaluates a select list containing window functions (OVER ...).
// It is a pipeline breaker: partitions need the whole input.
type Window struct {
	Input Node
	Items []sqlparser.SelectItem
}

// Distinct removes duplicate output rows.
type Distinct struct {
	Input Node
}

// Sort orders the input by the given items. Sorting above a Project may
// reference columns of the Project's input (SQL allows ordering by columns
// that were projected away); the engine keeps input rows aligned for that.
type Sort struct {
	Input Node
	By    []sqlparser.OrderItem
}

// Limit truncates the stream after N rows.
type Limit struct {
	Input Node
	N     int64
}

// Children implementations.
func (*Scan) Children() []Node      { return nil }
func (*Values) Children() []Node    { return nil }
func (d *Derived) Children() []Node { return []Node{d.Input} }
func (j *Join) Children() []Node    { return []Node{j.Left, j.Right} }
func (f *Filter) Children() []Node  { return []Node{f.Input} }
func (p *Project) Children() []Node { return []Node{p.Input} }
func (a *Aggregate) Children() []Node {
	return []Node{a.Input}
}
func (w *Window) Children() []Node   { return []Node{w.Input} }
func (d *Distinct) Children() []Node { return []Node{d.Input} }
func (s *Sort) Children() []Node     { return []Node{s.Input} }
func (l *Limit) Children() []Node    { return []Node{l.Input} }

func itemsSQL(items []sqlparser.SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.SQL()
	}
	return strings.Join(parts, ", ")
}

func exprsSQL(es []sqlparser.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.SQL()
	}
	return strings.Join(parts, ", ")
}

func (s *Scan) describe() string {
	out := "Scan " + s.Table
	if s.Alias != "" && s.Alias != s.Table {
		out += " AS " + s.Alias
	}
	if s.Columns != nil {
		out += " cols=[" + strings.Join(s.Columns, ", ") + "]"
	}
	if s.Predicate != nil {
		out += " pushed=(" + s.Predicate.SQL() + ")"
	}
	return out
}

func (*Values) describe() string { return "Values (1 empty row)" }

func (d *Derived) describe() string {
	out := "Derived"
	if d.Alias != "" {
		out += " AS " + d.Alias
	}
	return out
}

func (j *Join) describe() string {
	out := "Join " + j.Type.String()
	if j.On != nil {
		out += " ON " + j.On.SQL()
	}
	return out
}

func (f *Filter) describe() string { return "Filter " + f.Cond.SQL() }

func (p *Project) describe() string { return "Project " + itemsSQL(p.Items) }

func (a *Aggregate) describe() string {
	out := "Aggregate " + itemsSQL(a.Items)
	if len(a.GroupBy) > 0 {
		out += " GROUP BY " + exprsSQL(a.GroupBy)
	}
	if a.Having != nil {
		out += " HAVING " + a.Having.SQL()
	}
	return out
}

func (w *Window) describe() string { return "Window " + itemsSQL(w.Items) }

func (*Distinct) describe() string { return "Distinct" }

func (s *Sort) describe() string {
	parts := make([]string, len(s.By))
	for i, o := range s.By {
		parts[i] = o.SQL()
	}
	return "Sort " + strings.Join(parts, ", ")
}

func (l *Limit) describe() string { return fmt.Sprintf("Limit %d", l.N) }

// provOf returns the operator's provenance annotations, if any.
func provOf(n Node) []Provenance {
	switch x := n.(type) {
	case *Scan:
		return x.Prov
	case *Filter:
		return x.Prov
	case *Project:
		return x.Prov
	case *Aggregate:
		return x.Prov
	}
	return nil
}

// Walk visits n and every descendant, pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// String renders the plan as an indented operator tree — the EXPLAIN form.
// Policy-injected operators carry their provenance on the following line.
func String(root Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		if n == nil {
			return
		}
		indent := strings.Repeat("  ", depth)
		b.WriteString(indent)
		b.WriteString(n.describe())
		b.WriteByte('\n')
		for _, p := range provOf(n) {
			b.WriteString(indent)
			b.WriteString("  ^ ")
			b.WriteString(p.String())
			b.WriteByte('\n')
		}
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// BaseTables returns the names of every base relation the plan scans, in
// first-appearance order.
func BaseTables(root Node) []string {
	seen := make(map[string]bool)
	var out []string
	Walk(root, func(n Node) {
		if s, ok := n.(*Scan); ok && !seen[s.Table] {
			seen[s.Table] = true
			out = append(out, s.Table)
		}
	})
	return out
}
