package plan

import (
	"strconv"
	"strings"

	"paradise/internal/sqlparser"
)

// Block is one query block of a plan: the operator tail
//
//	[Limit] [Sort] [Distinct] [Aggregate|Window|Project] [Filter*]
//
// above a source node (Scan, Join, Derived, Values, or a nested operator
// chain without a Derived marker). It is the single owner of the block-shape
// rule: the optimizer prunes per block, the engine compiles per block, and
// the fragmenter cuts the plan spine at block boundaries — all through this
// type, so the decomposition can never diverge between layers again.
//
// Each field is a typed slot holding the operator occupying that position
// (nil when absent). At most one of Agg, Win and Proj is set — they share
// the projection slot. Filters holds the residual filter operators between
// the projection slot and the source, outermost first. Src is the source
// node the tail sits on.
//
// A Block produced by SplitBlock aliases the nodes of the tree it was split
// from; it must not be mutated unless the caller owns the tree (Clone gives
// an owned copy).
type Block struct {
	Limit    *Limit
	Sort     *Sort
	Distinct *Distinct
	Agg      *Aggregate
	Win      *Window
	Proj     *Project
	Filters  []*Filter // outermost first
	Src      Node
}

// SplitBlock walks one query block from its top node down to its source,
// gathering the operator tail into typed slots. It returns the block and
// the source node below the tail (also recorded as Block.Src). The tree is
// not modified; the block's slots alias its nodes.
func SplitBlock(n Node) (*Block, Node) {
	b := &Block{}
	cur := n
	if l, ok := cur.(*Limit); ok {
		b.Limit = l
		cur = l.Input
	}
	if s, ok := cur.(*Sort); ok {
		b.Sort = s
		cur = s.Input
	}
	if d, ok := cur.(*Distinct); ok {
		b.Distinct = d
		cur = d.Input
	}
	switch x := cur.(type) {
	case *Aggregate:
		b.Agg = x
		cur = x.Input
	case *Window:
		b.Win = x
		cur = x.Input
	case *Project:
		b.Proj = x
		cur = x.Input
	}
	for {
		f, ok := cur.(*Filter)
		if !ok {
			break
		}
		b.Filters = append(b.Filters, f)
		cur = f.Input
	}
	b.Src = cur
	return b, cur
}

// Rebuild assembles a fresh operator chain for the block over the given
// source — the inverse of SplitBlock: Rebuild of a just-split block over its
// own source is structurally identical to the original node. New operator
// nodes are allocated (the slot nodes are never mutated, so a block split
// from a shared tree can be rebuilt safely); clause contents (items,
// expressions) are shared, not cloned.
func (b *Block) Rebuild(src Node) Node {
	n := src
	for i := len(b.Filters) - 1; i >= 0; i-- {
		f := b.Filters[i]
		n = &Filter{Input: n, Cond: f.Cond, Prov: f.Prov}
	}
	switch {
	case b.Agg != nil:
		n = &Aggregate{Input: n, GroupBy: b.Agg.GroupBy, Items: b.Agg.Items, Having: b.Agg.Having, Prov: b.Agg.Prov}
	case b.Win != nil:
		n = &Window{Input: n, Items: b.Win.Items}
	case b.Proj != nil:
		n = &Project{Input: n, Items: b.Proj.Items, Prov: b.Proj.Prov}
	}
	if b.Distinct != nil {
		n = &Distinct{Input: n}
	}
	if b.Sort != nil {
		n = &Sort{Input: n, By: b.Sort.By}
	}
	if b.Limit != nil {
		n = &Limit{Input: n, N: b.Limit.N}
	}
	return n
}

// Clone deep-copies the block's clause content — every slot becomes a fresh
// node with cloned expressions, so the clone can be mutated (the fragmenter
// strips qualifiers, swaps filter lists) without touching the tree the block
// was split from. Src is shared, not cloned; the slot nodes' Inputs are nil
// (Rebuild reconnects them).
func (b *Block) Clone() *Block {
	out := &Block{Src: b.Src}
	if b.Limit != nil {
		out.Limit = &Limit{N: b.Limit.N}
	}
	if b.Sort != nil {
		out.Sort = &Sort{By: cloneOrder(b.Sort.By)}
	}
	if b.Distinct != nil {
		out.Distinct = &Distinct{}
	}
	switch {
	case b.Agg != nil:
		out.Agg = &Aggregate{
			GroupBy: cloneExprs(b.Agg.GroupBy),
			Items:   cloneItems(b.Agg.Items),
			Having:  sqlparser.CloneExpr(b.Agg.Having),
			Prov:    append([]Provenance(nil), b.Agg.Prov...),
		}
	case b.Win != nil:
		out.Win = &Window{Items: cloneItems(b.Win.Items)}
	case b.Proj != nil:
		out.Proj = &Project{
			Items: cloneItems(b.Proj.Items),
			Prov:  append([]Provenance(nil), b.Proj.Prov...),
		}
	}
	for _, f := range b.Filters {
		out.Filters = append(out.Filters, &Filter{
			Cond: sqlparser.CloneExpr(f.Cond),
			Prov: append([]Provenance(nil), f.Prov...),
		})
	}
	return out
}

// Items returns the block's select list — the items of whichever projection
// slot is occupied. A bare block (no projection operator) returns the
// identity star list, which is what lowering would have produced for it.
func (b *Block) Items() []sqlparser.SelectItem {
	switch {
	case b.Agg != nil:
		return b.Agg.Items
	case b.Win != nil:
		return b.Win.Items
	case b.Proj != nil:
		return b.Proj.Items
	}
	return []sqlparser.SelectItem{{Expr: &sqlparser.Star{}}}
}

// GroupBy returns the block's grouping expressions (nil when not grouped).
func (b *Block) GroupBy() []sqlparser.Expr {
	if b.Agg != nil {
		return b.Agg.GroupBy
	}
	return nil
}

// Having returns the block's HAVING condition (nil when not grouped).
func (b *Block) Having() sqlparser.Expr {
	if b.Agg != nil {
		return b.Agg.Having
	}
	return nil
}

// OrderBy returns the block's ORDER BY items (nil when unsorted).
func (b *Block) OrderBy() []sqlparser.OrderItem {
	if b.Sort != nil {
		return b.Sort.By
	}
	return nil
}

// FilterConds returns the residual filter conditions bottom-up (innermost
// first), so conjunct evaluation order matches the original WHERE.
func (b *Block) FilterConds() []sqlparser.Expr {
	if len(b.Filters) == 0 {
		return nil
	}
	out := make([]sqlparser.Expr, 0, len(b.Filters))
	for i := len(b.Filters) - 1; i >= 0; i-- {
		out = append(out, b.Filters[i].Cond)
	}
	return out
}

// Conjuncts flattens the block's WHERE surface into cloned conjuncts in
// original order: a predicate already pushed into the source scan comes
// first, then the residual filters bottom-up, each split on AND. The
// provenance entries attached to those conditions ride along so policy
// annotations can follow their conjuncts into whichever stage re-evaluates
// them. The fragmenter is the main consumer: it re-partitions the conjuncts
// across capability levels.
func (b *Block) Conjuncts() ([]sqlparser.Expr, []Provenance) {
	var conds []sqlparser.Expr
	var prov []Provenance
	if s, ok := b.Src.(*Scan); ok && s.Predicate != nil {
		for _, c := range sqlparser.Conjuncts(s.Predicate) {
			conds = append(conds, sqlparser.CloneExpr(c))
		}
	}
	for i := len(b.Filters) - 1; i >= 0; i-- {
		for _, c := range sqlparser.Conjuncts(b.Filters[i].Cond) {
			conds = append(conds, sqlparser.CloneExpr(c))
		}
	}
	for _, f := range b.Filters {
		prov = append(prov, f.Prov...)
	}
	if s, ok := b.Src.(*Scan); ok {
		prov = append(prov, s.Prov...)
	}
	return conds, prov
}

// Requirements is the result of the block's column-requirement analysis —
// which columns of the source the block's clauses read. There is exactly
// one implementation of these rules (Block.Requirements); the optimizer's
// projection pruning, the engine's scan pushdown and the fragmenter's
// stage projections all consume it.
type Requirements struct {
	// Cols lists the columns read by the select list, GROUP BY, HAVING and
	// ORDER BY, in first-use order with select-list columns first — so a
	// scan pruned to exactly Cols lines up with the projection above it.
	// Stars are skipped (see the Star flag).
	Cols []*sqlparser.ColumnRef
	// FilterCols lists the columns the residual filters read. They are kept
	// separate because whether they must survive a scan projection depends
	// on where the consumer evaluates the filters: a filter folded into the
	// scan predicate runs pre-projection (its columns need not be kept),
	// one evaluated above a join or derived table runs post-projection.
	FilterCols []*sqlparser.ColumnRef
	// Star reports that a star expression (SELECT *, t.*) appeared in the
	// block's clauses: the block's reads cannot be narrowed to Cols, so
	// scan pruning must keep the full width. COUNT(*) is not a star
	// expression — it is a star-flagged call reading no columns at all.
	Star bool
	// Bare reports a block with no projection operator at all — identity
	// output, full width by definition.
	Bare bool
}

// Prunable reports whether Cols (plus, depending on the consumer,
// FilterCols) is a complete account of what the block reads — the
// precondition for narrowing a scan.
func (r *Requirements) Prunable() bool { return !r.Star && !r.Bare }

// Requirements computes the block's column requirements. The rules, in one
// place for every layer:
//
//   - The select list, GROUP BY and HAVING contribute every column they
//     reference.
//   - ORDER BY above an Aggregate sorts the grouped output, but aggregate
//     calls inside it are evaluated over input rows — only their argument
//     columns count.
//   - ORDER BY above a plain projection may reach back to input columns;
//     references that resolve in the output (aliases, projected names) are
//     served there and do not count.
//   - Residual filter columns are reported separately (FilterCols).
//   - A star expression makes the analysis inexact: Star is set and pruning
//     consumers must bail, though Cols still lists the plainly referenced
//     columns for consumers that only need those (the fragmenter's
//     aggregation-stage projection).
func (b *Block) Requirements() *Requirements {
	r := &Requirements{}
	var items []sqlparser.SelectItem
	switch {
	case b.Agg != nil:
		items = b.Agg.Items
	case b.Win != nil:
		items = b.Win.Items
	case b.Proj != nil:
		items = b.Proj.Items
	default:
		r.Bare = true
		return r
	}

	add := func(dst *[]*sqlparser.ColumnRef, e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if _, isStar := x.(*sqlparser.Star); isStar {
				r.Star = true
			}
			return true
		})
		*dst = append(*dst, sqlparser.ColumnRefs(e)...)
	}

	outputNames := make([]string, len(items))
	for i, it := range items {
		add(&r.Cols, it.Expr)
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		outputNames[i] = name
	}
	if b.Agg != nil {
		for _, g := range b.Agg.GroupBy {
			add(&r.Cols, g)
		}
		add(&r.Cols, b.Agg.Having)
	}
	if b.Sort != nil {
		for _, o := range b.Sort.By {
			if b.Agg != nil {
				for _, f := range sqlparser.Aggregates(o.Expr) {
					for _, a := range f.Args {
						add(&r.Cols, a)
					}
				}
				continue
			}
			for _, c := range sqlparser.ColumnRefs(o.Expr) {
				if c.Table == "" && nameIn(outputNames, c.Name) {
					continue
				}
				r.Cols = append(r.Cols, c)
			}
		}
	}
	for _, f := range b.Filters {
		add(&r.FilterCols, f.Cond)
	}
	return r
}

func nameIn(names []string, name string) bool {
	for _, n := range names {
		if strings.EqualFold(n, name) {
			return true
		}
	}
	return false
}

// outputName derives the column name of an unaliased select item — the same
// naming the engine uses for output schemas, so requirement analysis and
// compilation agree on which ORDER BY references resolve in the output.
func outputName(e sqlparser.Expr, idx int) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return x.Name
	case *sqlparser.FuncCall:
		return x.Name
	default:
		return "col" + strconv.Itoa(idx+1)
	}
}
