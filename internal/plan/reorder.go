package plan

import (
	"strings"

	"paradise/internal/sqlparser"
)

// Join reordering: greedy smallest-intermediate-first over the equi-join
// graph, ranked by the estimate.go cardinality model. The transformation
// is deliberately conservative — it only fires on clusters where it is
// provably safe:
//
//   - only maximal clusters of INNER joins are flattened; LEFT joins
//     (null-extension is order-sensitive) and cross joins are never
//     touched, and neither are the subtrees on their sides beyond being
//     visited independently;
//   - every leaf must be a base-table access (Scan, or Filter over Scan);
//     a Derived leaf pins the whole cluster — block boundaries are the
//     paper's query nesting and never move;
//   - every ON conjunct must be a qualified equi-join predicate
//     (side.col = otherside.col) whose two sides resolve to two distinct
//     leaves; any non-equi or unattributable conjunct pins the cluster;
//   - clusters of fewer than three leaves keep their order (both
//     orientations of a two-way join ship the same intermediate bytes);
//   - a SELECT * above the cluster pins it: star expansion is positional,
//     and reordering changes the join output's column order.
//
// Within an admissible cluster the result is row-identical to the
// original (inner equi-joins commute and associate; duplicates and NULLs
// follow the same predicate evaluation either way) — pinned by the
// NULL/duplicate fixtures in reorder_test.go.

// ReorderJoins rewrites inner equi-join clusters into the greedy
// smallest-intermediate-first left-deep order, ranked by stats. The tree
// is rewritten in place where possible; the (possibly new) root is
// returned. A nil stats source still reorders, using the estimator's
// neutral defaults.
func ReorderJoins(root Node, stats Stats) Node {
	return reorderNode(root, stats, false)
}

// reorderNode walks the tree looking for join clusters. starAbove is set
// while the nearest enclosing select list (Project/Aggregate/Window)
// within the current block contains a star — positional expansion pins
// any cluster below it.
func reorderNode(n Node, stats Stats, starAbove bool) Node {
	switch x := n.(type) {
	case *Scan, *Values, nil:
		return n
	case *Derived:
		// A new block scope: stars above the boundary expand the derived
		// table's output, not the join's.
		x.Input = reorderNode(x.Input, stats, false)
		return x
	case *Join:
		return reorderCluster(x, stats, starAbove)
	case *Filter:
		x.Input = reorderNode(x.Input, stats, starAbove)
		return x
	case *Project:
		x.Input = reorderNode(x.Input, stats, itemsHaveStar(x.Items))
		return x
	case *Aggregate:
		x.Input = reorderNode(x.Input, stats, itemsHaveStar(x.Items))
		return x
	case *Window:
		x.Input = reorderNode(x.Input, stats, itemsHaveStar(x.Items))
		return x
	case *Distinct:
		x.Input = reorderNode(x.Input, stats, starAbove)
		return x
	case *Sort:
		x.Input = reorderNode(x.Input, stats, starAbove)
		return x
	case *Limit:
		x.Input = reorderNode(x.Input, stats, starAbove)
		return x
	default:
		return n
	}
}

// itemsHaveStar reports whether a select list contains a bare or
// qualified star. COUNT(*) does not count: the star never expands.
func itemsHaveStar(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			return true
		}
	}
	return false
}

// joinLeaf is one relation of a flattened cluster.
type joinLeaf struct {
	node  Node
	quals map[string]bool // lower-cased alias/table names it exposes
}

// joinEdge is one equi-join conjunct linking two leaves.
type joinEdge struct {
	cond sqlparser.Expr
	a, b int // leaf indices
}

// reorderCluster flattens the maximal inner-join cluster rooted at j and
// rebuilds it greedily. Any admissibility failure returns the cluster
// unchanged (after visiting non-cluster subtrees independently).
func reorderCluster(j *Join, stats Stats, starAbove bool) Node {
	var leaves []joinLeaf
	var edges []joinEdge
	ok := flattenJoins(j, &leaves, &edges)
	if !ok || starAbove || len(leaves) < 3 {
		// Keep the original shape; still visit below non-inner joins and
		// derived boundaries so nested clusters get their chance.
		visitJoinSides(j, stats)
		return j
	}
	reordered := greedyOrder(leaves, edges, stats)
	if reordered == nil {
		visitJoinSides(j, stats)
		return j
	}
	return reordered
}

// visitJoinSides recurses into a pinned join's children: derived inputs
// and clusters under LEFT joins are still independently reorderable.
func visitJoinSides(j *Join, stats Stats) {
	j.Left = reorderNode(j.Left, stats, false)
	j.Right = reorderNode(j.Right, stats, false)
}

// flattenJoins decomposes a maximal inner-join tree into leaves and
// equi-join edges. Returns false as soon as anything inadmissible is
// found: a LEFT or cross join inside the cluster, a non-relation leaf, a
// non-equi or unattributable conjunct.
func flattenJoins(n Node, leaves *[]joinLeaf, edges *[]joinEdge) bool {
	j, isJoin := n.(*Join)
	if isJoin && j.Type == sqlparser.JoinInner {
		if !flattenJoins(j.Left, leaves, edges) {
			return false
		}
		if !flattenJoins(j.Right, leaves, edges) {
			return false
		}
		if j.On == nil {
			return false // an inner join with no condition is a cross product
		}
		for _, c := range sqlparser.Conjuncts(j.On) {
			e, ok := classifyEdge(c, *leaves)
			if !ok {
				return false
			}
			*edges = append(*edges, e)
		}
		return true
	}
	if isJoin {
		return false // LEFT or cross join: the cluster is pinned
	}
	if !admissibleLeaf(n) {
		return false
	}
	*leaves = append(*leaves, joinLeaf{node: n, quals: sourceQuals(n)})
	return true
}

// admissibleLeaf accepts base-relation accesses only: a Scan, or a Filter
// directly over a Scan (the shape before predicate pushdown merges it).
func admissibleLeaf(n Node) bool {
	switch x := n.(type) {
	case *Scan:
		return true
	case *Filter:
		_, ok := x.Input.(*Scan)
		return ok
	}
	return false
}

// classifyEdge matches a conjunct as a qualified equi-join predicate
// between two distinct leaves.
func classifyEdge(c sqlparser.Expr, leaves []joinLeaf) (joinEdge, bool) {
	b, ok := c.(*sqlparser.BinaryExpr)
	if !ok || b.Op != sqlparser.OpEq {
		return joinEdge{}, false
	}
	cl, okL := b.L.(*sqlparser.ColumnRef)
	cr, okR := b.R.(*sqlparser.ColumnRef)
	if !okL || !okR || cl.Table == "" || cr.Table == "" {
		return joinEdge{}, false
	}
	a := leafOf(cl.Table, leaves)
	z := leafOf(cr.Table, leaves)
	if a < 0 || z < 0 || a == z {
		return joinEdge{}, false
	}
	return joinEdge{cond: c, a: a, b: z}, true
}

// leafOf resolves a qualifier to its leaf index, or -1.
func leafOf(qual string, leaves []joinLeaf) int {
	q := strings.ToLower(qual)
	for i, l := range leaves {
		if l.quals[q] {
			return i
		}
	}
	return -1
}

// greedyOrder builds the left-deep join in smallest-intermediate-first
// order. Returns nil when the join graph is disconnected (a reorder would
// have to introduce a cross product the user never wrote).
func greedyOrder(leaves []joinLeaf, edges []joinEdge, stats Stats) Node {
	n := len(leaves)
	used := make([]bool, n)
	placed := make([]bool, len(edges))

	// onFor collects the not-yet-placed edges fully covered once `add`
	// joins the set `in`, and marks them placed.
	onFor := func(in []bool, add int) sqlparser.Expr {
		var conds []sqlparser.Expr
		for ei, e := range edges {
			if placed[ei] {
				continue
			}
			aIn := in[e.a] || e.a == add
			bIn := in[e.b] || e.b == add
			if aIn && bIn {
				conds = append(conds, e.cond)
				placed[ei] = true
			}
		}
		return sqlparser.AndAll(conds)
	}

	// Pick the starting pair: the edge whose two-leaf join is smallest.
	bestA, bestB := -1, -1
	bestRows := 0.0
	for _, e := range edges {
		probe := &Join{Type: sqlparser.JoinInner, Left: leaves[e.a].node, Right: leaves[e.b].node, On: e.cond}
		rows := Estimate(probe, stats).Rows
		if bestA < 0 || rows < bestRows {
			bestA, bestB, bestRows = e.a, e.b, rows
		}
	}
	if bestA < 0 {
		return nil
	}
	used[bestA], used[bestB] = true, true
	acc := &Join{
		Type: sqlparser.JoinInner,
		Left: leaves[bestA].node, Right: leaves[bestB].node,
		On: onFor(used, -1),
	}
	var tree Node = acc

	for placedCount := 2; placedCount < n; placedCount++ {
		best := -1
		bestRows = 0.0
		var bestTree *Join
		for i := 0; i < n; i++ {
			if used[i] || !connected(i, used, edges, placed) {
				continue
			}
			probe := &Join{Type: sqlparser.JoinInner, Left: tree, Right: leaves[i].node, On: coveredOn(i, used, edges, placed)}
			rows := Estimate(probe, stats).Rows
			if best < 0 || rows < bestRows {
				best, bestRows, bestTree = i, rows, probe
			}
		}
		if best < 0 {
			return nil // disconnected join graph
		}
		used[best] = true
		bestTree.On = onFor(used, -1) // re-derive, marking edges placed
		tree = bestTree
	}
	return tree
}

// connected reports whether leaf i shares an unplaced edge with the set.
func connected(i int, in []bool, edges []joinEdge, placed []bool) bool {
	for ei, e := range edges {
		if placed[ei] {
			continue
		}
		if (e.a == i && in[e.b]) || (e.b == i && in[e.a]) {
			return true
		}
	}
	return false
}

// coveredOn previews the ON condition joining leaf i to the set, without
// consuming the edges (the caller re-derives once the pick is final).
func coveredOn(i int, in []bool, edges []joinEdge, placed []bool) sqlparser.Expr {
	var conds []sqlparser.Expr
	for ei, e := range edges {
		if placed[ei] {
			continue
		}
		aIn := in[e.a] || e.a == i
		bIn := in[e.b] || e.b == i
		if aIn && bIn {
			conds = append(conds, e.cond)
		}
	}
	return sqlparser.AndAll(conds)
}
