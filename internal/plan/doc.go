// Package plan defines the logical query plan — the one optimizable
// representation every layer below the parser shares. The parser produces an
// AST (sqlparser.Select); FromAST lowers it into a tree of typed relational
// operators; Optimize rewrites the tree (projection pruning, predicate
// pushdown toward the scans, constant folding); the engine compiles the tree
// into the batch-iterator pipeline; the fragment package splits the tree into
// pushed-down stages and the network package places those stages on the peer
// chain. Privacy rewrites surface in the tree as Filter/Project/Aggregate
// nodes carrying Provenance, so EXPLAIN output and audits can point at the
// exact operator a policy injected.
//
// The package also owns the block algebra: Block is the typed decomposition
// of one query block ([Limit][Sort][Distinct][Aggregate|Window|Project]
// [Filter*] over a source), with SplitBlock/Rebuild as exact inverses and
// Requirements as the single column-requirement analysis. The optimizer,
// the engine and the fragmenter all consume Block, so the block-shape and
// column-requirement rules have exactly one implementation (enforced in CI
// by scripts/blockguard.sh and the golden plan snapshots in testdata/).
//
// Scalar expressions inside plan nodes reuse the sqlparser expression
// vocabulary (ColumnRef, BinaryExpr, FuncCall, ...): the expression language
// is shared between the SQL surface and the plan; what the plan replaces is
// walking the *statement* AST (Select/TableRef trees) below the parser.
package plan
