package plan

import (
	"strconv"
	"strings"

	"paradise/internal/sqlparser"
)

// Catalog resolves the column names of a base relation; ok is false for
// unknown tables. The optimizer consults it to prune scan columns safely and
// to decide which join side owns an unqualified column reference.
type Catalog func(table string) (cols []string, ok bool)

// Options tune Optimize.
type Options struct {
	// Catalog enables projection pruning (Scan.Columns) and unqualified
	// column attribution in join pushdown; nil disables both.
	Catalog Catalog
	// CrossBlock lets predicates migrate through Derived boundaries into
	// inner query blocks (after rewriting them through the inner projection).
	// The fragmenter keeps this off so block boundaries — the paper's query
	// nesting — stay exactly where the rewriter placed them.
	CrossBlock bool
}

// Optimize rewrites the plan in place and returns its (possibly new) root.
// Rules: constant folding over every expression, predicate pushdown toward
// the scans (filters merge downward, split across join sides, and — with
// CrossBlock — migrate into derived blocks), and projection pruning
// (Scan.Columns narrows to the columns the block above actually reads).
// The tree must be owned by the caller; provenance annotations travel with
// the conjuncts they describe.
func Optimize(root Node, opts Options) Node {
	root = foldNodeExprs(root)
	root = pushFilters(root, opts)
	pruneScans(root, opts.Catalog)
	return root
}

// foldNodeExprs applies constant folding to every expression in the tree and
// drops filters that folded to constant TRUE.
func foldNodeExprs(n Node) Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *Scan:
		x.Predicate = foldExpr(x.Predicate)
		if x.Predicate != nil && isTrueLiteral(x.Predicate) {
			x.Predicate = nil
		}
	case *Derived:
		x.Input = foldNodeExprs(x.Input)
	case *Join:
		x.Left = foldNodeExprs(x.Left)
		x.Right = foldNodeExprs(x.Right)
		x.On = foldExpr(x.On)
	case *Filter:
		x.Input = foldNodeExprs(x.Input)
		x.Cond = foldExpr(x.Cond)
		if isTrueLiteral(x.Cond) {
			return x.Input
		}
	case *Project:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.Items {
			x.Items[i].Expr = foldExpr(x.Items[i].Expr)
		}
	case *Aggregate:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.Items {
			x.Items[i].Expr = foldExpr(x.Items[i].Expr)
		}
		for i := range x.GroupBy {
			x.GroupBy[i] = foldExpr(x.GroupBy[i])
		}
		x.Having = foldExpr(x.Having)
	case *Window:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.Items {
			x.Items[i].Expr = foldExpr(x.Items[i].Expr)
		}
	case *Distinct:
		x.Input = foldNodeExprs(x.Input)
	case *Sort:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.By {
			x.By[i].Expr = foldExpr(x.By[i].Expr)
		}
	case *Limit:
		x.Input = foldNodeExprs(x.Input)
	}
	return n
}

// pushFilters moves Filter nodes as close to the scans as semantics allow.
func pushFilters(n Node, opts Options) Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *Filter:
		in := pushFilters(x.Input, opts)
		return pushFilterInto(in, x.Cond, x.Prov, opts)
	case *Derived:
		x.Input = pushFilters(x.Input, opts)
	case *Join:
		x.Left = pushFilters(x.Left, opts)
		x.Right = pushFilters(x.Right, opts)
	case *Project:
		x.Input = pushFilters(x.Input, opts)
	case *Aggregate:
		x.Input = pushFilters(x.Input, opts)
	case *Window:
		x.Input = pushFilters(x.Input, opts)
	case *Distinct:
		x.Input = pushFilters(x.Input, opts)
	case *Sort:
		x.Input = pushFilters(x.Input, opts)
	case *Limit:
		x.Input = pushFilters(x.Input, opts)
	}
	return n
}

// pushFilterInto sinks a filter condition into the given input node,
// carrying its provenance along.
func pushFilterInto(in Node, cond sqlparser.Expr, prov []Provenance, opts Options) Node {
	switch t := in.(type) {
	case *Scan:
		// A single-relation filter always merges into the scan: the scan
		// predicate sees full-width rows, so every column the condition
		// references is in scope.
		t.Predicate = sqlparser.And(t.Predicate, cond)
		t.Prov = append(t.Prov, prov...)
		return t
	case *Filter:
		// Adjacent filters merge downward (outer conjuncts after inner ones).
		return pushFilterInto(t.Input, sqlparser.And(t.Cond, cond), append(t.Prov, prov...), opts)
	case *Join:
		return pushIntoJoin(t, cond, prov, opts)
	case *Derived:
		if opts.CrossBlock {
			if pushed := pushThroughDerived(t, cond, prov, opts); pushed {
				return t
			}
		}
		return &Filter{Input: in, Cond: cond, Prov: prov}
	default:
		return &Filter{Input: in, Cond: cond, Prov: prov}
	}
}

// pushIntoJoin distributes filter conjuncts onto the join sides that own all
// of their (qualified) column references. Conjuncts on the null-extended
// side of a LEFT JOIN stay above the join — pushing them below would turn
// filtered rows into spurious null-extensions.
func pushIntoJoin(j *Join, cond sqlparser.Expr, prov []Provenance, opts Options) Node {
	leftQuals := sourceQuals(j.Left)
	rightQuals := sourceQuals(j.Right)
	var keep []sqlparser.Expr
	for _, c := range sqlparser.Conjuncts(cond) {
		side := conjunctSide(c, leftQuals, rightQuals, opts.Catalog)
		switch {
		case side < 0:
			j.Left = pushFilterInto(j.Left, c, provFor(prov, c), opts)
		case side > 0 && j.Type != sqlparser.JoinLeft:
			j.Right = pushFilterInto(j.Right, c, provFor(prov, c), opts)
		default:
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 {
		return j
	}
	return &Filter{Input: j, Cond: sqlparser.AndAll(keep), Prov: prov}
}

// provFor keeps the provenance entries that describe the given conjunct.
func provFor(prov []Provenance, c sqlparser.Expr) []Provenance {
	if len(prov) == 0 {
		return nil
	}
	sql := strings.ToLower(c.SQL())
	var out []Provenance
	for _, p := range prov {
		if p.Detail == "" || strings.ToLower(p.Detail) == sql {
			out = append(out, p)
		}
	}
	return out
}

// sourceQuals collects the qualifiers (aliases or table names) a join side
// exposes, lower-cased.
func sourceQuals(n Node) map[string]bool {
	out := make(map[string]bool)
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			q := x.Alias
			if q == "" {
				q = x.Table
			}
			out[strings.ToLower(q)] = true
		case *Derived:
			out[strings.ToLower(x.Alias)] = true
		case *Join:
			walk(x.Left)
			walk(x.Right)
		case *Filter:
			walk(x.Input)
		}
	}
	walk(n)
	return out
}

// conjunctSide decides which join side owns every column the conjunct
// references: -1 left, +1 right, 0 undecidable (stay above the join).
// Qualified references resolve by qualifier; unqualified ones resolve
// through the catalog when exactly one side's base tables define the name.
func conjunctSide(c sqlparser.Expr, leftQuals, rightQuals map[string]bool, cat Catalog) int {
	refs := sqlparser.ColumnRefs(c)
	if len(refs) == 0 {
		return 0
	}
	side := 0
	for _, r := range refs {
		var s int
		if r.Table != "" {
			q := strings.ToLower(r.Table)
			switch {
			case leftQuals[q]:
				s = -1
			case rightQuals[q]:
				s = 1
			default:
				return 0
			}
		} else {
			s = unqualifiedSide(r.Name, leftQuals, rightQuals, cat)
			if s == 0 {
				return 0
			}
		}
		if side == 0 {
			side = s
		} else if side != s {
			return 0
		}
	}
	return side
}

// unqualifiedSide attributes an unqualified column to the single join side
// whose base tables define it, via the catalog.
func unqualifiedSide(name string, leftQuals, rightQuals map[string]bool, cat Catalog) int {
	if cat == nil {
		return 0
	}
	has := func(quals map[string]bool) int {
		n := 0
		for q := range quals {
			cols, ok := cat(q)
			if !ok {
				return 2 // derived or unknown side: cannot attribute safely
			}
			for _, c := range cols {
				if strings.EqualFold(c, name) {
					n++
					break
				}
			}
		}
		return n
	}
	l, r := has(leftQuals), has(rightQuals)
	if l == 1 && r == 0 {
		return -1
	}
	if l == 0 && r == 1 {
		return 1
	}
	return 0
}

// pushThroughDerived migrates a filter into a derived block when the block
// is a pure projection chain (Project over Filters over a source — no
// aggregation, windows, DISTINCT, ORDER BY or LIMIT) and every referenced
// output column maps to a rewritable item. The condition is rewritten
// through the projection (aliases substitute their defining expressions)
// and sinks further toward the scan inside the block.
func pushThroughDerived(d *Derived, cond sqlparser.Expr, prov []Provenance, opts Options) bool {
	p, ok := d.Input.(*Project)
	if !ok {
		return false
	}
	subst := map[string]sqlparser.Expr{}
	for _, it := range p.Items {
		if _, isStar := it.Expr.(*sqlparser.Star); isStar {
			return false
		}
		name := it.Alias
		if name == "" {
			if c, okc := it.Expr.(*sqlparser.ColumnRef); okc {
				name = c.Name
			} else {
				continue
			}
		}
		subst[strings.ToLower(name)] = it.Expr
	}
	// Every referenced column must map to an item, and qualifiers (if any)
	// must name the derived table itself.
	for _, r := range sqlparser.ColumnRefs(cond) {
		if r.Table != "" && !strings.EqualFold(r.Table, d.Alias) {
			return false
		}
		if _, okr := subst[strings.ToLower(r.Name)]; !okr {
			return false
		}
	}
	rewritten := sqlparser.RewriteExpr(cond, func(e sqlparser.Expr) sqlparser.Expr {
		if c, okc := e.(*sqlparser.ColumnRef); okc {
			return sqlparser.CloneExpr(subst[strings.ToLower(c.Name)])
		}
		return e
	})
	p.Input = pushFilterInto(p.Input, rewritten, rewriteProv(prov, rewritten), opts)
	return true
}

// rewriteProv re-details provenance entries whose condition was rewritten
// through a projection.
func rewriteProv(prov []Provenance, rewritten sqlparser.Expr) []Provenance {
	if len(prov) == 0 {
		return nil
	}
	out := make([]Provenance, len(prov))
	copy(out, prov)
	for i := range out {
		if out[i].Detail != "" {
			out[i].Detail += " => " + rewritten.SQL()
		}
	}
	return out
}

// pruneScans narrows Scan.Columns throughout the tree. It works block by
// block: the operators directly above a scan (or above the scans of a join)
// determine which columns are read; everything else never leaves storage.
// The scan predicate runs before projection, so its columns need not be
// kept. Pruning requires the catalog — without the full column list the
// identity case (nothing to prune) cannot be detected.
func pruneScans(n Node, cat Catalog) {
	if n == nil || cat == nil {
		return
	}
	blockTop, src := splitBlock(n)
	switch s := src.(type) {
	case *Scan:
		pruneSingleScan(blockTop, s, cat)
	case *Derived:
		pruneScans(s.Input, cat)
	case *Join:
		pruneJoinScans(blockTop, s, cat)
		// Recurse into derived blocks nested under the join.
		var walkSides func(Node)
		walkSides = func(side Node) {
			switch x := side.(type) {
			case *Derived:
				pruneScans(x.Input, cat)
			case *Join:
				walkSides(x.Left)
				walkSides(x.Right)
			case *Filter:
				walkSides(x.Input)
			}
		}
		walkSides(s.Left)
		walkSides(s.Right)
	}
}

// blockOps is the operator tail of one query block, outermost first,
// excluding filters (which sit on the scan by the time pruning runs).
type blockOps struct {
	limit    *Limit
	sort     *Sort
	distinct *Distinct
	agg      *Aggregate
	win      *Window
	proj     *Project
	filters  []*Filter
}

// splitBlock walks one query block from its top node down to its source
// (Scan, Join, Derived or Values), gathering the operator tail.
func splitBlock(n Node) (*blockOps, Node) {
	ops := &blockOps{}
	cur := n
	if l, ok := cur.(*Limit); ok {
		ops.limit = l
		cur = l.Input
	}
	if s, ok := cur.(*Sort); ok {
		ops.sort = s
		cur = s.Input
	}
	if d, ok := cur.(*Distinct); ok {
		ops.distinct = d
		cur = d.Input
	}
	switch x := cur.(type) {
	case *Aggregate:
		ops.agg = x
		cur = x.Input
	case *Window:
		ops.win = x
		cur = x.Input
	case *Project:
		ops.proj = x
		cur = x.Input
	}
	for {
		f, ok := cur.(*Filter)
		if !ok {
			break
		}
		ops.filters = append(ops.filters, f)
		cur = f.Input
	}
	return ops, cur
}

// requirements lists the columns a block tail reads from its source, in
// first-use order (select-list first, so a pruned scan lines up with the
// projection and the downstream projection becomes an identity). ok is
// false when the requirements cannot be determined (star projection).
func (ops *blockOps) requirements() (refs []*sqlparser.ColumnRef, ok bool) {
	var items []sqlparser.SelectItem
	var outputNames []string
	add := func(e sqlparser.Expr) bool {
		if e == nil {
			return true
		}
		star := false
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if _, isStar := x.(*sqlparser.Star); isStar {
				star = true
			}
			return true
		})
		if star {
			return false
		}
		refs = append(refs, sqlparser.ColumnRefs(e)...)
		return true
	}

	switch {
	case ops.agg != nil:
		items = ops.agg.Items
	case ops.win != nil:
		items = ops.win.Items
	case ops.proj != nil:
		items = ops.proj.Items
	default:
		return nil, false // bare source: full-width output
	}
	for i, it := range items {
		if !add(it.Expr) {
			return nil, false
		}
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		outputNames = append(outputNames, name)
	}
	if ops.agg != nil {
		for _, g := range ops.agg.GroupBy {
			if !add(g) {
				return nil, false
			}
		}
		if !add(ops.agg.Having) {
			return nil, false
		}
	}
	if ops.sort != nil {
		for _, o := range ops.sort.By {
			if ops.agg != nil {
				// Above an Aggregate the sort sees the grouped output, but
				// aggregate calls in ORDER BY are evaluated over the input
				// rows — their argument columns must survive the scan.
				for _, f := range sqlparser.Aggregates(o.Expr) {
					for _, a := range f.Args {
						if !add(a) {
							return nil, false
						}
					}
				}
				continue
			}
			// ORDER BY may reference input columns that were projected away;
			// references that resolve in the output (aliases, projected
			// names) do not hit the scan.
			for _, r := range sqlparser.ColumnRefs(o.Expr) {
				if r.Table == "" && nameIn(outputNames, r.Name) {
					continue
				}
				refs = append(refs, r)
			}
		}
	}
	// Residual filters run above the scan, over already-projected rows:
	// their columns must survive the projection (unlike the scan predicate,
	// which runs inside the scan over full-width rows).
	for _, f := range ops.filters {
		if !add(f.Cond) {
			return nil, false
		}
	}
	return refs, true
}

func nameIn(names []string, name string) bool {
	for _, n := range names {
		if strings.EqualFold(n, name) {
			return true
		}
	}
	return false
}

func outputName(e sqlparser.Expr, idx int) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return x.Name
	case *sqlparser.FuncCall:
		return x.Name
	default:
		return "col" + strconv.Itoa(idx+1)
	}
}

// pruneSingleScan narrows one single-table block's scan.
func pruneSingleScan(ops *blockOps, s *Scan, cat Catalog) {
	if s.Columns != nil {
		return
	}
	cols, ok := cat(s.Table)
	if !ok {
		return
	}
	refs, ok := ops.requirements()
	if !ok {
		return
	}
	qual := s.Alias
	if qual == "" {
		qual = s.Table
	}
	var needed []string
	seen := map[string]bool{}
	for _, r := range refs {
		if r.Table != "" && !strings.EqualFold(r.Table, qual) {
			return // reference escapes this scan: bail out
		}
		key := strings.ToLower(r.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		if !nameIn(cols, r.Name) {
			return // not a column of the relation (will error downstream)
		}
		needed = append(needed, r.Name)
	}
	if len(needed) >= len(cols) {
		return // full width: nothing to prune
	}
	s.Columns = needed
}

// pruneJoinScans narrows the scans under a join. Only references qualified
// with a side's alias can be attributed, so any unqualified reference in
// the block disables pruning.
func pruneJoinScans(ops *blockOps, j *Join, cat Catalog) {
	refs, ok := ops.requirements()
	if !ok {
		return
	}
	var scans []*Scan
	var collect func(Node)
	collect = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			scans = append(scans, x)
		case *Join:
			refs = append(refs, sqlparser.ColumnRefs(x.On)...)
			collect(x.Left)
			collect(x.Right)
		case *Filter:
			refs = append(refs, sqlparser.ColumnRefs(x.Cond)...)
			collect(x.Input)
		}
	}
	refs = append(refs, sqlparser.ColumnRefs(j.On)...)
	collect(j.Left)
	collect(j.Right)

	for _, r := range refs {
		if r.Table == "" {
			return // cannot attribute unqualified references across a join
		}
	}
	for _, s := range scans {
		if s.Columns != nil {
			continue
		}
		cols, ok := cat(s.Table)
		if !ok {
			continue
		}
		qual := s.Alias
		if qual == "" {
			qual = s.Table
		}
		var needed []string
		seen := map[string]bool{}
		usable := true
		for _, r := range refs {
			if !strings.EqualFold(r.Table, qual) {
				continue
			}
			key := strings.ToLower(r.Name)
			if seen[key] {
				continue
			}
			seen[key] = true
			if !nameIn(cols, r.Name) {
				usable = false
				break
			}
			needed = append(needed, r.Name)
		}
		if !usable || len(needed) == 0 || len(needed) >= len(cols) {
			continue
		}
		// The scan predicate runs pre-projection; its columns need not stay.
		s.Columns = needed
	}
}
