package plan

import (
	"strings"

	"paradise/internal/sqlparser"
)

// Catalog resolves the column names of a base relation; ok is false for
// unknown tables. The optimizer consults it to prune scan columns safely and
// to decide which join side owns an unqualified column reference.
type Catalog func(table string) (cols []string, ok bool)

// Options tune Optimize.
type Options struct {
	// Catalog enables projection pruning (Scan.Columns) and unqualified
	// column attribution in join pushdown; nil disables both.
	Catalog Catalog
	// CrossBlock lets predicates migrate through Derived boundaries into
	// inner query blocks (after rewriting them through the inner projection).
	// The fragmenter keeps this off so block boundaries — the paper's query
	// nesting — stay exactly where the rewriter placed them.
	CrossBlock bool
	// ReorderJoins enables greedy smallest-intermediate-first reordering of
	// inner equi-join clusters (see reorder.go), ranked by Stats. Off by
	// default: plan shape changes only when explicitly requested.
	ReorderJoins bool
	// Stats supplies base-relation statistics to the cardinality model; nil
	// degrades estimation to neutral defaults.
	Stats Stats
}

// Optimize rewrites the plan in place and returns its (possibly new) root.
// Rules: constant folding over every expression, predicate pushdown toward
// the scans (filters merge downward, split across join sides, and — with
// CrossBlock — migrate into derived blocks), and projection pruning
// (Scan.Columns narrows to the columns the block above actually reads).
// The tree must be owned by the caller; provenance annotations travel with
// the conjuncts they describe.
func Optimize(root Node, opts Options) Node {
	root = foldNodeExprs(root)
	root = pushFilters(root, opts)
	if opts.ReorderJoins {
		// After pushdown (leaf predicates sharpen the estimates), before
		// pruning (pruning reads the final tree shape).
		root = ReorderJoins(root, opts.Stats)
	}
	pruneScans(root, opts.Catalog)
	return root
}

// foldNodeExprs applies constant folding to every expression in the tree and
// drops filters that folded to constant TRUE.
func foldNodeExprs(n Node) Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *Scan:
		x.Predicate = foldExpr(x.Predicate)
		if x.Predicate != nil && isTrueLiteral(x.Predicate) {
			x.Predicate = nil
		}
	case *Derived:
		x.Input = foldNodeExprs(x.Input)
	case *Join:
		x.Left = foldNodeExprs(x.Left)
		x.Right = foldNodeExprs(x.Right)
		x.On = foldExpr(x.On)
	case *Filter:
		x.Input = foldNodeExprs(x.Input)
		x.Cond = foldExpr(x.Cond)
		if isTrueLiteral(x.Cond) {
			return x.Input
		}
	case *Project:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.Items {
			x.Items[i].Expr = foldExpr(x.Items[i].Expr)
		}
	case *Aggregate:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.Items {
			x.Items[i].Expr = foldExpr(x.Items[i].Expr)
		}
		for i := range x.GroupBy {
			x.GroupBy[i] = foldExpr(x.GroupBy[i])
		}
		x.Having = foldExpr(x.Having)
	case *Window:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.Items {
			x.Items[i].Expr = foldExpr(x.Items[i].Expr)
		}
	case *Distinct:
		x.Input = foldNodeExprs(x.Input)
	case *Sort:
		x.Input = foldNodeExprs(x.Input)
		for i := range x.By {
			x.By[i].Expr = foldExpr(x.By[i].Expr)
		}
	case *Limit:
		x.Input = foldNodeExprs(x.Input)
	}
	return n
}

// pushFilters moves Filter nodes as close to the scans as semantics allow.
func pushFilters(n Node, opts Options) Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *Filter:
		in := pushFilters(x.Input, opts)
		return pushFilterInto(in, x.Cond, x.Prov, opts)
	case *Derived:
		x.Input = pushFilters(x.Input, opts)
	case *Join:
		x.Left = pushFilters(x.Left, opts)
		x.Right = pushFilters(x.Right, opts)
	case *Project:
		x.Input = pushFilters(x.Input, opts)
	case *Aggregate:
		x.Input = pushFilters(x.Input, opts)
	case *Window:
		x.Input = pushFilters(x.Input, opts)
	case *Distinct:
		x.Input = pushFilters(x.Input, opts)
	case *Sort:
		x.Input = pushFilters(x.Input, opts)
	case *Limit:
		x.Input = pushFilters(x.Input, opts)
	}
	return n
}

// pushFilterInto sinks a filter condition into the given input node,
// carrying its provenance along.
func pushFilterInto(in Node, cond sqlparser.Expr, prov []Provenance, opts Options) Node {
	switch t := in.(type) {
	case *Scan:
		// A single-relation filter always merges into the scan: the scan
		// predicate sees full-width rows, so every column the condition
		// references is in scope.
		t.Predicate = sqlparser.And(t.Predicate, cond)
		t.Prov = append(t.Prov, prov...)
		return t
	case *Filter:
		// Adjacent filters merge downward (outer conjuncts after inner ones).
		return pushFilterInto(t.Input, sqlparser.And(t.Cond, cond), append(t.Prov, prov...), opts)
	case *Join:
		return pushIntoJoin(t, cond, prov, opts)
	case *Derived:
		if opts.CrossBlock {
			if pushed := pushThroughDerived(t, cond, prov, opts); pushed {
				return t
			}
		}
		return &Filter{Input: in, Cond: cond, Prov: prov}
	default:
		return &Filter{Input: in, Cond: cond, Prov: prov}
	}
}

// pushIntoJoin distributes filter conjuncts onto the join sides that own all
// of their (qualified) column references. Conjuncts on the null-extended
// side of a LEFT JOIN stay above the join — pushing them below would turn
// filtered rows into spurious null-extensions.
func pushIntoJoin(j *Join, cond sqlparser.Expr, prov []Provenance, opts Options) Node {
	leftQuals := sourceQuals(j.Left)
	rightQuals := sourceQuals(j.Right)
	var keep []sqlparser.Expr
	for _, c := range sqlparser.Conjuncts(cond) {
		side := conjunctSide(c, leftQuals, rightQuals, opts.Catalog)
		switch {
		case side < 0:
			j.Left = pushFilterInto(j.Left, c, provFor(prov, c), opts)
		case side > 0 && j.Type != sqlparser.JoinLeft:
			j.Right = pushFilterInto(j.Right, c, provFor(prov, c), opts)
		default:
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 {
		return j
	}
	return &Filter{Input: j, Cond: sqlparser.AndAll(keep), Prov: prov}
}

// provFor keeps the provenance entries that describe the given conjunct.
func provFor(prov []Provenance, c sqlparser.Expr) []Provenance {
	if len(prov) == 0 {
		return nil
	}
	sql := strings.ToLower(c.SQL())
	var out []Provenance
	for _, p := range prov {
		if p.Detail == "" || strings.ToLower(p.Detail) == sql {
			out = append(out, p)
		}
	}
	return out
}

// sourceQuals collects the qualifiers (aliases or table names) a join side
// exposes, lower-cased.
func sourceQuals(n Node) map[string]bool {
	out := make(map[string]bool)
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			q := x.Alias
			if q == "" {
				q = x.Table
			}
			out[strings.ToLower(q)] = true
		case *Derived:
			out[strings.ToLower(x.Alias)] = true
		case *Join:
			walk(x.Left)
			walk(x.Right)
		case *Filter:
			walk(x.Input)
		}
	}
	walk(n)
	return out
}

// conjunctSide decides which join side owns every column the conjunct
// references: -1 left, +1 right, 0 undecidable (stay above the join).
// Qualified references resolve by qualifier; unqualified ones resolve
// through the catalog when exactly one side's base tables define the name.
func conjunctSide(c sqlparser.Expr, leftQuals, rightQuals map[string]bool, cat Catalog) int {
	refs := sqlparser.ColumnRefs(c)
	if len(refs) == 0 {
		return 0
	}
	side := 0
	for _, r := range refs {
		var s int
		if r.Table != "" {
			q := strings.ToLower(r.Table)
			switch {
			case leftQuals[q]:
				s = -1
			case rightQuals[q]:
				s = 1
			default:
				return 0
			}
		} else {
			s = unqualifiedSide(r.Name, leftQuals, rightQuals, cat)
			if s == 0 {
				return 0
			}
		}
		if side == 0 {
			side = s
		} else if side != s {
			return 0
		}
	}
	return side
}

// unqualifiedSide attributes an unqualified column to the single join side
// whose base tables define it, via the catalog.
func unqualifiedSide(name string, leftQuals, rightQuals map[string]bool, cat Catalog) int {
	if cat == nil {
		return 0
	}
	has := func(quals map[string]bool) int {
		n := 0
		for q := range quals {
			cols, ok := cat(q)
			if !ok {
				return 2 // derived or unknown side: cannot attribute safely
			}
			for _, c := range cols {
				if strings.EqualFold(c, name) {
					n++
					break
				}
			}
		}
		return n
	}
	l, r := has(leftQuals), has(rightQuals)
	if l == 1 && r == 0 {
		return -1
	}
	if l == 0 && r == 1 {
		return 1
	}
	return 0
}

// pushThroughDerived migrates a filter into a derived block when the block
// is a pure projection chain (Project over Filters over a source — no
// aggregation, windows, DISTINCT, ORDER BY or LIMIT) and every referenced
// output column maps to a rewritable item. The condition is rewritten
// through the projection (aliases substitute their defining expressions)
// and sinks further toward the scan inside the block.
func pushThroughDerived(d *Derived, cond sqlparser.Expr, prov []Provenance, opts Options) bool {
	p, ok := d.Input.(*Project)
	if !ok {
		return false
	}
	subst := map[string]sqlparser.Expr{}
	names := map[string]bool{}
	for i, it := range p.Items {
		if _, isStar := it.Expr.(*sqlparser.Star); isStar {
			return false
		}
		// Two output items sharing a name (aliased or derived — SELECT
		// abs(x), y AS abs both expose "abs") make any reference to it
		// ambiguous, and the unoptimized plan rejects it at resolution
		// time. Never push through — substituting one of the duplicates
		// would silently pick a side and change (or hide) the error.
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		key := strings.ToLower(name)
		if names[key] {
			return false
		}
		names[key] = true
		if it.Alias == "" {
			if _, okc := it.Expr.(*sqlparser.ColumnRef); !okc {
				continue // not substitutable; name still guards ambiguity
			}
		}
		subst[key] = it.Expr
	}
	// Every referenced column must map to an item, and qualifiers (if any)
	// must name the derived table itself.
	for _, r := range sqlparser.ColumnRefs(cond) {
		if r.Table != "" && !strings.EqualFold(r.Table, d.Alias) {
			return false
		}
		if _, okr := subst[strings.ToLower(r.Name)]; !okr {
			return false
		}
	}
	rewritten := sqlparser.RewriteExpr(cond, func(e sqlparser.Expr) sqlparser.Expr {
		if c, okc := e.(*sqlparser.ColumnRef); okc {
			return sqlparser.CloneExpr(subst[strings.ToLower(c.Name)])
		}
		return e
	})
	p.Input = pushFilterInto(p.Input, rewritten, rewriteProv(prov, rewritten), opts)
	return true
}

// rewriteProv re-details provenance entries whose condition was rewritten
// through a projection.
func rewriteProv(prov []Provenance, rewritten sqlparser.Expr) []Provenance {
	if len(prov) == 0 {
		return nil
	}
	out := make([]Provenance, len(prov))
	copy(out, prov)
	for i := range out {
		if out[i].Detail != "" {
			out[i].Detail += " => " + rewritten.SQL()
		}
	}
	return out
}

// pruneScans narrows Scan.Columns throughout the tree. It works block by
// block (plan.SplitBlock): the operators directly above a scan (or above the
// scans of a join) determine which columns are read; everything else never
// leaves storage. The scan predicate runs before projection, so its columns
// need not be kept. Pruning requires the catalog — without the full column
// list the identity case (nothing to prune) cannot be detected.
func pruneScans(n Node, cat Catalog) {
	if n == nil || cat == nil {
		return
	}
	blockTop, src := SplitBlock(n)
	switch s := src.(type) {
	case *Scan:
		pruneSingleScan(blockTop, s, cat)
	case *Derived:
		pruneScans(s.Input, cat)
	case *Join:
		pruneJoinScans(blockTop, s, cat)
		// Recurse into derived blocks nested under the join.
		var walkSides func(Node)
		walkSides = func(side Node) {
			switch x := side.(type) {
			case *Derived:
				pruneScans(x.Input, cat)
			case *Join:
				walkSides(x.Left)
				walkSides(x.Right)
			case *Filter:
				walkSides(x.Input)
			}
		}
		walkSides(s.Left)
		walkSides(s.Right)
	}
}

// pruneRefs is the pruning view of a block's requirements: the clause
// columns first, then the residual-filter columns. Filters above a derived
// table or join run over already-projected rows, so their columns must
// survive the projection (unlike the scan predicate, which runs inside the
// scan over full-width rows); refs ordering keeps select-list columns first
// so a pruned scan lines up with the projection above it.
func pruneRefs(blk *Block) (refs []*sqlparser.ColumnRef, ok bool) {
	reqs := blk.Requirements()
	if !reqs.Prunable() {
		return nil, false
	}
	refs = append(refs, reqs.Cols...)
	refs = append(refs, reqs.FilterCols...)
	return refs, true
}

// pruneSingleScan narrows one single-table block's scan.
func pruneSingleScan(blk *Block, s *Scan, cat Catalog) {
	if s.Columns != nil {
		return
	}
	cols, ok := cat(s.Table)
	if !ok {
		return
	}
	refs, ok := pruneRefs(blk)
	if !ok {
		return
	}
	qual := s.Alias
	if qual == "" {
		qual = s.Table
	}
	var needed []string
	seen := map[string]bool{}
	for _, r := range refs {
		if r.Table != "" && !strings.EqualFold(r.Table, qual) {
			return // reference escapes this scan: bail out
		}
		key := strings.ToLower(r.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		if !nameIn(cols, r.Name) {
			return // not a column of the relation (will error downstream)
		}
		needed = append(needed, r.Name)
	}
	if len(needed) >= len(cols) {
		return // full width: nothing to prune
	}
	s.Columns = needed
}

// pruneJoinScans narrows the scans under a join. Only references qualified
// with a side's alias can be attributed, so any unqualified reference in
// the block disables pruning.
func pruneJoinScans(blk *Block, j *Join, cat Catalog) {
	refs, ok := pruneRefs(blk)
	if !ok {
		return
	}
	var scans []*Scan
	var collect func(Node)
	collect = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			scans = append(scans, x)
		case *Join:
			refs = append(refs, sqlparser.ColumnRefs(x.On)...)
			collect(x.Left)
			collect(x.Right)
		case *Filter:
			refs = append(refs, sqlparser.ColumnRefs(x.Cond)...)
			collect(x.Input)
		}
	}
	refs = append(refs, sqlparser.ColumnRefs(j.On)...)
	collect(j.Left)
	collect(j.Right)

	for _, r := range refs {
		if r.Table == "" {
			return // cannot attribute unqualified references across a join
		}
	}
	for _, s := range scans {
		if s.Columns != nil {
			continue
		}
		cols, ok := cat(s.Table)
		if !ok {
			continue
		}
		qual := s.Alias
		if qual == "" {
			qual = s.Table
		}
		var needed []string
		seen := map[string]bool{}
		usable := true
		for _, r := range refs {
			if !strings.EqualFold(r.Table, qual) {
				continue
			}
			key := strings.ToLower(r.Name)
			if seen[key] {
				continue
			}
			seen[key] = true
			if !nameIn(cols, r.Name) {
				usable = false
				break
			}
			needed = append(needed, r.Name)
		}
		if !usable || len(needed) == 0 || len(needed) >= len(cols) {
			continue
		}
		// The scan predicate runs pre-projection; its columns need not stay.
		s.Columns = needed
	}
}
