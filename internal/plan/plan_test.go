package plan_test

import (
	"strings"
	"testing"

	"paradise/internal/plan"
	"paradise/internal/sqlparser"
)

func mustParse(t *testing.T, sql string) *sqlparser.Select {
	t.Helper()
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func mustLower(t *testing.T, sql string) plan.Node {
	t.Helper()
	root, err := plan.FromAST(mustParse(t, sql))
	if err != nil {
		t.Fatalf("lower %q: %v", sql, err)
	}
	return root
}

// testCatalog is the schema of the bench tables used across the engine.
func testCatalog() plan.Catalog {
	tables := map[string][]string{
		"d":     {"x", "y", "z", "t", "cell"},
		"cells": {"cell", "label"},
	}
	return func(name string) ([]string, bool) {
		cols, ok := tables[name]
		return cols, ok
	}
}

// TestRoundTrip: lowering then rendering reproduces the canonical SQL, so
// fragments built from plan subtrees keep an exact SQL surface.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT x, y FROM d",
		"SELECT * FROM d WHERE x > 5 AND z < 2",
		"SELECT x, AVG(z) AS za FROM d WHERE t > 0 GROUP BY x HAVING COUNT(*) > 3 ORDER BY za DESC LIMIT 10",
		"SELECT DISTINCT cell FROM d ORDER BY cell",
		"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1",
		"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3",
		"SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d",
		"SELECT a.x FROM d AS a LEFT JOIN cells ON a.cell = cells.cell",
	}
	for _, q := range queries {
		sel := mustParse(t, q)
		root, err := plan.FromAST(sel)
		if err != nil {
			t.Fatalf("lower %q: %v", q, err)
		}
		back, err := plan.ToSelect(root)
		if err != nil {
			t.Fatalf("render %q: %v", q, err)
		}
		if got, want := back.SQL(), sel.SQL(); got != want {
			t.Errorf("round trip of %q:\n got %q\nwant %q", q, got, want)
		}
	}
}

// TestLoweringShapes: the operator stack mirrors the statement's clauses in
// the canonical order.
func TestLoweringShapes(t *testing.T) {
	root := mustLower(t, "SELECT DISTINCT x, AVG(z) AS za FROM d GROUP BY x ORDER BY x LIMIT 3")
	l, ok := root.(*plan.Limit)
	if !ok {
		t.Fatalf("top = %T, want *plan.Limit", root)
	}
	s, ok := l.Input.(*plan.Sort)
	if !ok {
		t.Fatalf("under limit = %T, want *plan.Sort", l.Input)
	}
	d, ok := s.Input.(*plan.Distinct)
	if !ok {
		t.Fatalf("under sort = %T, want *plan.Distinct", s.Input)
	}
	a, ok := d.Input.(*plan.Aggregate)
	if !ok {
		t.Fatalf("under distinct = %T, want *plan.Aggregate", d.Input)
	}
	if _, ok := a.Input.(*plan.Scan); !ok {
		t.Fatalf("aggregate input = %T, want *plan.Scan", a.Input)
	}

	// Window items become a Window node, not a Project.
	root = mustLower(t, "SELECT SUM(z) OVER (PARTITION BY cell) FROM d")
	if _, ok := root.(*plan.Window); !ok {
		t.Fatalf("window query top = %T, want *plan.Window", root)
	}

	// Aggregate in WHERE is rejected at lowering.
	if _, err := plan.FromAST(mustParse(t, "SELECT x FROM d WHERE AVG(z) > 1")); err == nil {
		t.Fatal("aggregate in WHERE lowered without error")
	}
}

// TestOptimizePushesFilterIntoScan: a WHERE lands in Scan.Predicate.
func TestOptimizePushesFilterIntoScan(t *testing.T) {
	root := plan.Optimize(mustLower(t, "SELECT x FROM d WHERE z < 1 AND t > 2"), plan.Options{})
	p, ok := root.(*plan.Project)
	if !ok {
		t.Fatalf("top = %T, want *plan.Project", root)
	}
	sc, ok := p.Input.(*plan.Scan)
	if !ok {
		t.Fatalf("project input = %T, want *plan.Scan (filter should be merged)", p.Input)
	}
	if sc.Predicate == nil || sc.Predicate.SQL() != "z < 1 AND t > 2" {
		t.Fatalf("scan predicate = %v", sc.Predicate)
	}
}

// TestOptimizeConstantFolding: literal arithmetic folds; a tautological
// filter disappears.
func TestOptimizeConstantFolding(t *testing.T) {
	root := plan.Optimize(mustLower(t, "SELECT x FROM d WHERE x > 1 + 2"), plan.Options{})
	sc := root.(*plan.Project).Input.(*plan.Scan)
	if got := sc.Predicate.SQL(); got != "x > 3" {
		t.Fatalf("folded predicate = %q, want \"x > 3\"", got)
	}

	root = plan.Optimize(mustLower(t, "SELECT x FROM d WHERE 1 < 2"), plan.Options{})
	sc = root.(*plan.Project).Input.(*plan.Scan)
	if sc.Predicate != nil {
		t.Fatalf("tautology should fold away, got %q", sc.Predicate.SQL())
	}

	// Division by zero must NOT fold (the runtime error belongs to execution).
	root = plan.Optimize(mustLower(t, "SELECT x FROM d WHERE x > 1 / 0"), plan.Options{})
	sc = root.(*plan.Project).Input.(*plan.Scan)
	if got := sc.Predicate.SQL(); got != "x > 1 / 0" {
		t.Fatalf("division by zero folded: %q", got)
	}
}

// TestOptimizeJoinPushdown: qualified conjuncts sink to their side; on a
// LEFT JOIN the null-extended side keeps its conjunct above the join.
func TestOptimizeJoinPushdown(t *testing.T) {
	root := plan.Optimize(mustLower(t,
		"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1 AND cells.label = 'room'"),
		plan.Options{Catalog: testCatalog()})
	j := root.(*plan.Project).Input.(*plan.Join)
	ls, ok := j.Left.(*plan.Scan)
	if !ok || ls.Predicate == nil || ls.Predicate.SQL() != "d.z < 1" {
		t.Fatalf("left side: %T %v", j.Left, ls)
	}
	rs, ok := j.Right.(*plan.Scan)
	if !ok || rs.Predicate == nil || rs.Predicate.SQL() != "cells.label = 'room'" {
		t.Fatalf("right side: %T", j.Right)
	}

	// LEFT JOIN: the right-side conjunct must stay above the join.
	root = plan.Optimize(mustLower(t,
		"SELECT d.x FROM d LEFT JOIN cells ON d.cell = cells.cell WHERE cells.label = 'room'"),
		plan.Options{Catalog: testCatalog()})
	f, ok := root.(*plan.Project).Input.(*plan.Filter)
	if !ok {
		t.Fatalf("left-join filter pushed below the join: %T", root.(*plan.Project).Input)
	}
	if _, ok := f.Input.(*plan.Join); !ok {
		t.Fatalf("filter input = %T, want join", f.Input)
	}
}

// TestOptimizeCrossBlockPushdown: an outer predicate migrates through a
// derived block, rewritten through the projection.
func TestOptimizeCrossBlockPushdown(t *testing.T) {
	root := plan.Optimize(mustLower(t,
		"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3"),
		plan.Options{CrossBlock: true})
	d := root.(*plan.Project).Input.(*plan.Derived)
	sc := d.Input.(*plan.Project).Input.(*plan.Scan)
	want := "z < 1.5 AND x + y > 3"
	if sc.Predicate == nil || sc.Predicate.SQL() != want {
		t.Fatalf("inner scan predicate = %v, want %q", sc.Predicate, want)
	}

	// Without CrossBlock the block boundary is respected.
	root = plan.Optimize(mustLower(t,
		"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3"),
		plan.Options{})
	if _, ok := root.(*plan.Project).Input.(*plan.Filter); !ok {
		t.Fatalf("filter crossed the block boundary without CrossBlock")
	}

	// A LIMIT inside the block must block the migration (it would change
	// which rows survive).
	root = plan.Optimize(mustLower(t,
		"SELECT s FROM (SELECT x AS s FROM d LIMIT 5) WHERE s > 3"),
		plan.Options{CrossBlock: true})
	if _, ok := root.(*plan.Project).Input.(*plan.Filter); !ok {
		t.Fatalf("filter pushed past a LIMIT")
	}
}

// TestOptimizePrunesScanColumns: with a catalog, only referenced columns
// stay on the scan; filter-only columns ride the predicate (which runs
// pre-projection) and are pruned too.
func TestOptimizePrunesScanColumns(t *testing.T) {
	root := plan.Optimize(mustLower(t, "SELECT x + y AS s FROM d WHERE z < 1"),
		plan.Options{Catalog: testCatalog()})
	sc := root.(*plan.Project).Input.(*plan.Scan)
	if got := strings.Join(sc.Columns, ","); got != "x,y" {
		t.Fatalf("pruned columns = %q, want \"x,y\"", got)
	}

	// Star projections read everything: no pruning.
	root = plan.Optimize(mustLower(t, "SELECT * FROM d WHERE z < 1"),
		plan.Options{Catalog: testCatalog()})
	sc = root.(*plan.Project).Input.(*plan.Scan)
	if sc.Columns != nil {
		t.Fatalf("star projection pruned to %v", sc.Columns)
	}

	// Grouped query: group-by and aggregate argument columns survive.
	root = plan.Optimize(mustLower(t, "SELECT cell, AVG(z) FROM d GROUP BY cell"),
		plan.Options{Catalog: testCatalog()})
	asc := root.(*plan.Aggregate).Input.(*plan.Scan)
	if got := strings.Join(asc.Columns, ","); got != "cell,z" {
		t.Fatalf("grouped pruning = %q, want \"cell,z\"", got)
	}

	// ORDER BY reaching back to an input column keeps that column; an
	// alias does not.
	root = plan.Optimize(mustLower(t, "SELECT x AS a FROM d ORDER BY z"),
		plan.Options{Catalog: testCatalog()})
	ssc := root.(*plan.Sort).Input.(*plan.Project).Input.(*plan.Scan)
	if got := strings.Join(ssc.Columns, ","); got != "x,z" {
		t.Fatalf("order-by pruning = %q, want \"x,z\"", got)
	}
}

// TestExplainRendersProvenance: policy provenance is visible in String().
func TestExplainRendersProvenance(t *testing.T) {
	root := mustLower(t, "SELECT x FROM d WHERE z < 2")
	plan.Walk(root, func(n plan.Node) {
		if f, ok := n.(*plan.Filter); ok {
			f.Prov = append(f.Prov, plan.Provenance{
				Origin: "policy", Module: "M1",
				Rule:    "selection control (injected condition)",
				Columns: []string{"z"}, Detail: "z < 2",
			})
		}
	})
	out := plan.String(root)
	if !strings.Contains(out, "policy:M1 selection control") || !strings.Contains(out, "[z]") {
		t.Fatalf("explain misses provenance:\n%s", out)
	}
	// Provenance survives pushdown into the scan.
	root = plan.Optimize(root, plan.Options{})
	out = plan.String(root)
	if !strings.Contains(out, "pushed=(z < 2)") || !strings.Contains(out, "policy:M1") {
		t.Fatalf("provenance lost in pushdown:\n%s", out)
	}
}

// TestBaseTables walks scans across blocks and joins.
func TestBaseTables(t *testing.T) {
	root := mustLower(t, "SELECT s FROM (SELECT d.x AS s FROM d JOIN cells ON d.cell = cells.cell)")
	got := plan.BaseTables(root)
	if len(got) != 2 || got[0] != "d" || got[1] != "cells" {
		t.Fatalf("BaseTables = %v", got)
	}
}

// Corner cases the lowering pass must handle (satellite): quoted
// identifiers, SELECT * with joins, nested subqueries in FROM, NULL-literal
// comparisons.
func TestLoweringCornerCases(t *testing.T) {
	cases := []string{
		`SELECT "Weird Name" FROM d WHERE "Weird Name" > 1`,
		"SELECT * FROM d JOIN cells ON d.cell = cells.cell",
		"SELECT v FROM (SELECT u AS v FROM (SELECT x AS u FROM d WHERE x > 0) WHERE u < 9)",
		"SELECT x FROM d WHERE y = NULL",
		"SELECT x FROM d WHERE y IS NOT NULL AND z IS NULL",
	}
	for _, q := range cases {
		sel := mustParse(t, q)
		root, err := plan.FromAST(sel)
		if err != nil {
			t.Fatalf("lower %q: %v", q, err)
		}
		back, err := plan.ToSelect(root)
		if err != nil {
			t.Fatalf("render %q: %v", q, err)
		}
		if got, want := back.SQL(), sel.SQL(); got != want {
			t.Errorf("corner round trip %q:\n got %q\nwant %q", q, got, want)
		}
		// The optimizer must also leave these executable: x = NULL folds to
		// NULL (not an error), quoted identifiers resolve case-sensitively.
		plan.Optimize(root, plan.Options{Catalog: testCatalog(), CrossBlock: true})
	}

	// NULL-literal comparison folds to a NULL literal, which filters
	// everything (SQL three-valued logic) — not to FALSE and not an error.
	root := plan.Optimize(mustLower(t, "SELECT x FROM d WHERE 1 = NULL"), plan.Options{})
	sc := root.(*plan.Project).Input.(*plan.Scan)
	if sc.Predicate == nil || sc.Predicate.SQL() != "NULL" {
		t.Fatalf("1 = NULL folded to %v, want NULL", sc.Predicate)
	}
}

// TestCrossBlockPushdownAmbiguousNames (regression, PR 3 bug): when two
// derived-table output items share a lower-cased name, a reference to any
// output column of that block is potentially ambiguous — the push must bail
// so the runtime resolves (and rejects) the reference exactly like the
// unoptimized plan, instead of silently substituting the last duplicate.
func TestCrossBlockPushdownAmbiguousNames(t *testing.T) {
	root := plan.Optimize(mustLower(t,
		"SELECT z FROM (SELECT x AS s, y AS s, z FROM d) WHERE s > 3"),
		plan.Options{CrossBlock: true})
	if _, ok := root.(*plan.Project).Input.(*plan.Filter); !ok {
		t.Fatalf("filter pushed through a block with duplicate output names:\n%s", plan.String(root))
	}
}
