package plan_test

import (
	"strings"
	"testing"

	"paradise/internal/plan"
	"paradise/internal/sqlparser"
)

// shapeCorpus enumerates query-block shapes: every slot combination the
// lowering can produce (Limit/Sort/Distinct × Aggregate|Window|Project ×
// filters), plus window-vs-aggregate exclusivity and derived/join sources.
// Shapes lowering cannot produce (multi-filter stacks, bare sources, scans
// with pushed predicates) are covered by hand-built trees below.
var shapeCorpus = []string{
	"SELECT x FROM d",
	"SELECT * FROM d",
	"SELECT x, y FROM d WHERE z < 1",
	"SELECT x FROM d WHERE z < 1 AND t > 2",
	"SELECT DISTINCT x FROM d",
	"SELECT x FROM d ORDER BY x",
	"SELECT x FROM d LIMIT 3",
	"SELECT DISTINCT x FROM d WHERE z < 1 ORDER BY x DESC LIMIT 3",
	"SELECT cell, AVG(z) AS za FROM d GROUP BY cell",
	"SELECT cell, AVG(z) AS za FROM d WHERE t > 0 GROUP BY cell HAVING SUM(z) > 1 ORDER BY za LIMIT 5",
	"SELECT COUNT(*) FROM d",
	"SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d",
	"SELECT SUM(z) OVER (PARTITION BY cell) FROM d WHERE x > y ORDER BY t LIMIT 2",
	"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1",
	"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3",
	"SELECT 1 FROM d",
}

// TestSplitRebuildRoundTrip: Rebuild is the exact inverse of SplitBlock —
// the reassembled tree is structurally identical (same EXPLAIN rendering,
// same SQL surface) without mutating the original.
func TestSplitRebuildRoundTrip(t *testing.T) {
	for _, q := range shapeCorpus {
		root := mustLower(t, q)
		before := plan.String(root)

		blk, src := plan.SplitBlock(root)
		if blk.Src != src {
			t.Fatalf("%q: Src not recorded", q)
		}
		rebuilt := blk.Rebuild(src)

		if got := plan.String(rebuilt); got != before {
			t.Errorf("%q: rebuild changed the tree:\n got:\n%s\nwant:\n%s", q, got, before)
		}
		if got := plan.String(root); got != before {
			t.Errorf("%q: rebuild mutated the original tree:\n%s", q, got)
		}
		selBefore, err := plan.ToSelect(root)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		selAfter, err := plan.ToSelect(rebuilt)
		if err != nil {
			t.Fatalf("%q (rebuilt): %v", q, err)
		}
		if selBefore.SQL() != selAfter.SQL() {
			t.Errorf("%q: SQL surface diverged: %q vs %q", q, selBefore.SQL(), selAfter.SQL())
		}
	}
}

// TestSplitBlockSlots pins the slot assignment for one maximal shape and
// the aggregate/window exclusivity.
func TestSplitBlockSlots(t *testing.T) {
	blk, src := plan.SplitBlock(mustLower(t,
		"SELECT DISTINCT cell, AVG(z) AS za FROM d WHERE t > 0 GROUP BY cell ORDER BY za LIMIT 5"))
	if blk.Limit == nil || blk.Sort == nil || blk.Distinct == nil || blk.Agg == nil {
		t.Fatalf("missing slots: %+v", blk)
	}
	if blk.Win != nil || blk.Proj != nil {
		t.Fatal("aggregate block must leave the window/project slots empty")
	}
	if len(blk.Filters) != 1 {
		t.Fatalf("filters = %d, want 1", len(blk.Filters))
	}
	if _, ok := src.(*plan.Scan); !ok {
		t.Fatalf("source = %T, want *plan.Scan", src)
	}

	blk, _ = plan.SplitBlock(mustLower(t, "SELECT SUM(z) OVER (PARTITION BY cell) FROM d"))
	if blk.Win == nil || blk.Agg != nil || blk.Proj != nil {
		t.Fatalf("window block slots wrong: %+v", blk)
	}
}

// TestSplitRebuildHandBuiltShapes covers tree shapes lowering cannot emit:
// multi-filter stacks, a bare scan (no projection operator), and a scan
// carrying a pushed predicate.
func TestSplitRebuildHandBuiltShapes(t *testing.T) {
	cond1, err := sqlparser.ParseExpr("z < 1")
	if err != nil {
		t.Fatal(err)
	}
	cond2, err := sqlparser.ParseExpr("t > 2")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := sqlparser.ParseExpr("x > 0")
	if err != nil {
		t.Fatal(err)
	}

	// Stacked filters over a predicated scan under a projection.
	root := plan.Node(&plan.Project{
		Items: []sqlparser.SelectItem{{Expr: &sqlparser.ColumnRef{Name: "x"}}},
		Input: &plan.Filter{
			Cond: cond1,
			Input: &plan.Filter{
				Cond:  cond2,
				Input: &plan.Scan{Table: "d", Predicate: pred},
			},
		},
	})
	before := plan.String(root)
	blk, src := plan.SplitBlock(root)
	if len(blk.Filters) != 2 {
		t.Fatalf("filters = %d, want 2", len(blk.Filters))
	}
	// FilterConds is bottom-up: innermost conjunct first.
	conds := blk.FilterConds()
	if conds[0].SQL() != "t > 2" || conds[1].SQL() != "z < 1" {
		t.Fatalf("FilterConds order = [%s, %s], want bottom-up", conds[0].SQL(), conds[1].SQL())
	}
	if got := plan.String(blk.Rebuild(src)); got != before {
		t.Errorf("multi-filter round trip:\n got:\n%s\nwant:\n%s", got, before)
	}
	// Conjuncts puts the scan predicate first, then filters bottom-up.
	flat, _ := blk.Conjuncts()
	var sqls []string
	for _, c := range flat {
		sqls = append(sqls, c.SQL())
	}
	if strings.Join(sqls, "; ") != "x > 0; t > 2; z < 1" {
		t.Fatalf("Conjuncts order = %v", sqls)
	}

	// Bare scan: empty block, Rebuild is the identity.
	bare, bsrc := plan.SplitBlock(&plan.Scan{Table: "d"})
	if bare.Proj != nil || bare.Agg != nil || bare.Win != nil || len(bare.Filters) != 0 {
		t.Fatalf("bare block not empty: %+v", bare)
	}
	if bare.Rebuild(bsrc) != bsrc {
		t.Fatal("bare Rebuild must return the source unchanged")
	}
	if !bare.Requirements().Bare {
		t.Fatal("bare block requirements must be flagged Bare")
	}
	// The identity star list stands in for the missing projection.
	if items := bare.Items(); len(items) != 1 {
		t.Fatalf("bare Items = %v", items)
	} else if _, ok := items[0].Expr.(*sqlparser.Star); !ok {
		t.Fatalf("bare Items = %v, want star", items)
	}
}

// TestBlockCloneIsOwned: mutating a clone (the fragmenter strips qualifiers
// in place) must not leak into the source tree.
func TestBlockCloneIsOwned(t *testing.T) {
	root := mustLower(t, "SELECT d.x FROM d WHERE d.z < 1 ORDER BY d.t")
	before := plan.String(root)
	blk, _ := plan.SplitBlock(root)
	cl := blk.Clone()

	cl.Proj.Items[0].Expr.(*sqlparser.ColumnRef).Table = ""
	cl.Sort.By[0].Expr.(*sqlparser.ColumnRef).Table = ""
	cl.Filters[0].Cond.(*sqlparser.BinaryExpr).L.(*sqlparser.ColumnRef).Table = ""

	if got := plan.String(root); got != before {
		t.Fatalf("clone aliased the original tree:\n%s", got)
	}
}

// requirementsNames flattens a requirement list for comparison.
func requirementsNames(refs []*sqlparser.ColumnRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.Name
		if r.Table != "" {
			parts[i] = r.Table + "." + r.Name
		}
	}
	return strings.Join(parts, ",")
}

// TestRequirements pins the column-requirement analysis on representative
// queries — the exact sets the pre-unification engine (its scan-pushdown
// derivation) and optimizer (its per-block requirements) computed, so the
// single implementation provably subsumes both.
func TestRequirements(t *testing.T) {
	cases := []struct {
		q          string
		cols       string // first-use order, select-list first (duplicates kept)
		filterCols string
		star       bool
	}{
		// Expression projection: both referenced columns, nothing else.
		{q: "SELECT x + y AS s FROM d", cols: "x,y"},
		// Residual filter columns are reported separately.
		{q: "SELECT x + y AS s FROM d WHERE z < 1", cols: "x,y", filterCols: "z"},
		// Star: analysis inexact, pruning must bail.
		{q: "SELECT * FROM d WHERE z < 1", cols: "", filterCols: "z", star: true},
		// Grouped: items, GROUP BY, HAVING, in that order.
		{q: "SELECT cell, AVG(z) AS za FROM d GROUP BY cell HAVING SUM(z) > 1", cols: "cell,z,cell,z"},
		// COUNT(*) is a star-flagged call, not a Star expression: it reads
		// no columns, so the analysis stays exact and pruning proceeds.
		{q: "SELECT cell, COUNT(*) AS n FROM d GROUP BY cell", cols: "cell,cell"},
		// ORDER BY reaching back to an input column keeps it ...
		{q: "SELECT x AS a FROM d ORDER BY z", cols: "x,z"},
		// ... while aliases and projected names resolve in the output.
		{q: "SELECT x AS a FROM d ORDER BY a", cols: "x"},
		{q: "SELECT x FROM d ORDER BY x", cols: "x"},
		// Grouped ORDER BY: only aggregate-call arguments hit the input.
		{q: "SELECT cell, COUNT(z) AS n FROM d GROUP BY cell ORDER BY MAX(x)", cols: "cell,z,cell,x"},
		{q: "SELECT cell, MAX(z) AS peak FROM d GROUP BY cell ORDER BY peak DESC", cols: "cell,z,cell"},
		// Windows: call arguments plus partition/order keys.
		{q: "SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d", cols: "z,cell,t"},
		// No columns at all (constant projection).
		{q: "SELECT 1 FROM d", cols: ""},
	}
	for _, c := range cases {
		blk, _ := plan.SplitBlock(mustLower(t, c.q))
		reqs := blk.Requirements()
		if got := requirementsNames(reqs.Cols); got != c.cols {
			t.Errorf("%q: Cols = %q, want %q", c.q, got, c.cols)
		}
		if got := requirementsNames(reqs.FilterCols); got != c.filterCols {
			t.Errorf("%q: FilterCols = %q, want %q", c.q, got, c.filterCols)
		}
		if reqs.Star != c.star {
			t.Errorf("%q: Star = %v, want %v", c.q, reqs.Star, c.star)
		}
		if reqs.Bare {
			t.Errorf("%q: unexpectedly Bare", c.q)
		}
		if reqs.Prunable() == (c.star) {
			t.Errorf("%q: Prunable = %v inconsistent with Star = %v", c.q, reqs.Prunable(), c.star)
		}
	}
}
