package plan_test

import (
	"os"
	"path/filepath"
	"testing"

	"paradise/internal/plan"
)

// reorderCatalog extends the bench schema with a third relation so
// three-way clusters exist: readings(t, val) joins d on t.
func reorderCatalog() plan.Catalog {
	tables := map[string][]string{
		"d":        {"x", "y", "z", "t", "cell"},
		"cells":    {"cell", "label"},
		"readings": {"t", "val"},
	}
	return func(name string) ([]string, bool) {
		cols, ok := tables[name]
		return cols, ok
	}
}

// reorderStats makes d⋈cells (1000 rows) far cheaper than d⋈readings
// (5000 rows), so the greedy order starts with cells regardless of the
// order the query spells the joins in.
func reorderStats() plan.Stats {
	m := map[string]*plan.TableStats{
		"d": {
			Rows: 1000, RowBytes: 42,
			Cols: map[string]plan.ColStats{
				"x":    {NDV: 1000, HasRange: true, Min: 0, Max: 10, AvgBytes: 8},
				"y":    {NDV: 1000, HasRange: true, Min: 0, Max: 10, AvgBytes: 8},
				"z":    {NDV: 1000, HasRange: true, Min: 0, Max: 10, AvgBytes: 8},
				"t":    {NDV: 1000, HasRange: true, Min: 0, Max: 999, AvgBytes: 8},
				"cell": {NDV: 10, AvgBytes: 10},
			},
		},
		"cells": {
			Rows: 10, RowBytes: 20,
			Cols: map[string]plan.ColStats{
				"cell":  {NDV: 10, AvgBytes: 10},
				"label": {NDV: 5, AvgBytes: 10},
			},
		},
		"readings": {
			Rows: 5000, RowBytes: 16,
			Cols: map[string]plan.ColStats{
				"t":   {NDV: 1000, HasRange: true, Min: 0, Max: 999, AvgBytes: 8},
				"val": {NDV: 5000, AvgBytes: 8},
			},
		},
	}
	return func(name string) (*plan.TableStats, bool) {
		ts, ok := m[name]
		return ts, ok
	}
}

// reorderGoldens snapshots reordered trees; regenerate with -update.
var reorderGoldens = []struct {
	name string
	sql  string
}{
	{"reorder_three_way_chain",
		"SELECT d.x, readings.val, cells.label FROM d JOIN readings ON d.t = readings.t JOIN cells ON d.cell = cells.cell"},
	{"reorder_with_filters",
		"SELECT d.x, readings.val, cells.label FROM d JOIN readings ON d.t = readings.t JOIN cells ON d.cell = cells.cell WHERE d.z < 1 AND cells.label = 'room'"},
}

func TestReorderGoldens(t *testing.T) {
	for _, c := range reorderGoldens {
		t.Run(c.name, func(t *testing.T) {
			root := plan.Optimize(mustLower(t, c.sql), plan.Options{
				Catalog:      reorderCatalog(),
				ReorderJoins: true,
				Stats:        reorderStats(),
			})
			got := "-- " + c.sql + "\n" + plan.String(root)
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("reordered plan changed (re-run with -update if intended):\n got:\n%s\nwant:\n%s",
					indent(got), indent(string(want)))
			}
		})
	}
}

// TestReorderPicksSmallestFirst: the greedy order joins d with the tiny
// cells table before the large readings table, whatever order the SQL
// spells.
func TestReorderPicksSmallestFirst(t *testing.T) {
	sql := "SELECT d.x, readings.val, cells.label FROM d JOIN readings ON d.t = readings.t JOIN cells ON d.cell = cells.cell"
	root := plan.Optimize(mustLower(t, sql), plan.Options{
		Catalog:      reorderCatalog(),
		ReorderJoins: true,
		Stats:        reorderStats(),
	})
	before := plan.Optimize(mustLower(t, sql), plan.Options{Catalog: reorderCatalog()})
	if plan.String(root) == plan.String(before) {
		t.Fatalf("expected the cluster to be reordered, got the original shape:\n%s", plan.String(root))
	}
	// The innermost join must be d ⋈ cells (the modeled-smallest pair).
	var inner *plan.Join
	plan.Walk(root, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			inner = j // last visited in pre-order depth is the deepest
		}
	})
	if inner == nil {
		t.Fatal("no join in reordered plan")
	}
	tables := map[string]bool{}
	for _, side := range []plan.Node{inner.Left, inner.Right} {
		if s, ok := side.(*plan.Scan); ok {
			tables[s.Table] = true
		}
	}
	if !tables["d"] || !tables["cells"] {
		t.Fatalf("innermost join is not d ⋈ cells: %s", plan.String(root))
	}
}

// pinnedQueries must come out of ReorderJoins identical to how they went
// in: LEFT joins, non-equi joins, derived-table leaves, two-way clusters
// and star projections are never reordered.
var pinnedQueries = []struct {
	name string
	sql  string
}{
	{"left_join", "SELECT d.x FROM d LEFT JOIN cells ON d.cell = cells.cell LEFT JOIN readings ON d.t = readings.t"},
	{"left_join_in_cluster", "SELECT d.x, readings.val FROM d JOIN readings ON d.t = readings.t LEFT JOIN cells ON d.cell = cells.cell"},
	{"non_equi", "SELECT d.x FROM d JOIN readings ON d.t < readings.t JOIN cells ON d.cell = cells.cell"},
	{"mixed_non_equi_conjunct", "SELECT d.x FROM d JOIN readings ON d.t = readings.t AND d.x < readings.val JOIN cells ON d.cell = cells.cell"},
	{"derived_leaf", "SELECT q.s, readings.val, cells.label FROM (SELECT x + y AS s, t, cell FROM d) AS q JOIN readings ON q.t = readings.t JOIN cells ON q.cell = cells.cell"},
	{"two_way", "SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell"},
	{"star_above", "SELECT * FROM d JOIN readings ON d.t = readings.t JOIN cells ON d.cell = cells.cell"},
	{"unqualified_on", "SELECT d.x FROM d JOIN readings ON t = readings.t JOIN cells ON d.cell = cells.cell"},
}

func TestReorderPinsUnsafeShapes(t *testing.T) {
	for _, c := range pinnedQueries {
		t.Run(c.name, func(t *testing.T) {
			opts := plan.Options{Catalog: reorderCatalog()}
			before := plan.String(plan.Optimize(mustLower(t, c.sql), opts))
			opts.ReorderJoins = true
			opts.Stats = reorderStats()
			after := plan.String(plan.Optimize(mustLower(t, c.sql), opts))
			if before != after {
				t.Errorf("pinned shape was reordered:\nbefore:\n%s\nafter:\n%s",
					indent(before), indent(after))
			}
		})
	}
}

// TestReorderInsideDerived: a cluster nested inside a derived table is
// still reorderable — the boundary pins leaves, not inner blocks.
func TestReorderInsideDerived(t *testing.T) {
	sql := "SELECT v FROM (SELECT readings.val AS v FROM d JOIN readings ON d.t = readings.t JOIN cells ON d.cell = cells.cell) AS q"
	opts := plan.Options{Catalog: reorderCatalog(), ReorderJoins: true, Stats: reorderStats()}
	after := plan.String(plan.Optimize(mustLower(t, sql), opts))
	before := plan.String(plan.Optimize(mustLower(t, sql), plan.Options{Catalog: reorderCatalog()}))
	if before == after {
		t.Fatalf("cluster inside the derived block was not reordered:\n%s", after)
	}
}

// TestReorderNilStats: reordering with no statistics must not panic and
// must produce a valid (possibly reordered) plan.
func TestReorderNilStats(t *testing.T) {
	sql := "SELECT d.x, readings.val, cells.label FROM d JOIN readings ON d.t = readings.t JOIN cells ON d.cell = cells.cell"
	root := plan.Optimize(mustLower(t, sql), plan.Options{
		Catalog:      reorderCatalog(),
		ReorderJoins: true,
	})
	joins := 0
	plan.Walk(root, func(n plan.Node) {
		if _, ok := n.(*plan.Join); ok {
			joins++
		}
	})
	if joins != 2 {
		t.Fatalf("reordered plan lost a join: %d joins\n%s", joins, plan.String(root))
	}
}
