package plan

import (
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// foldExpr rewrites constant sub-expressions into literals. Folding is
// conservative: it only evaluates operations whose runtime semantics are
// reproduced exactly here (literal comparisons, arithmetic, boolean logic,
// NOT/negation, concatenation) and leaves anything that could raise a
// runtime error (division by zero, incomparable types) untouched so errors
// still surface at execution time.
func foldExpr(e sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	return sqlparser.RewriteExpr(e, foldNode)
}

func foldNode(e sqlparser.Expr) sqlparser.Expr {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		return foldBinary(x)
	case *sqlparser.UnaryExpr:
		return foldUnary(x)
	}
	return e
}

func literal(e sqlparser.Expr) (schema.Value, bool) {
	l, ok := e.(*sqlparser.Literal)
	if !ok {
		return schema.Value{}, false
	}
	return l.Value, true
}

func lit(v schema.Value) sqlparser.Expr { return &sqlparser.Literal{Value: v} }

func foldBinary(x *sqlparser.BinaryExpr) sqlparser.Expr {
	l, lok := literal(x.L)
	r, rok := literal(x.R)

	// Boolean connectives: fold identities even when only one side is a
	// literal (TRUE AND p → p, FALSE OR p → p, ...), respecting SQL
	// three-valued logic (NULL AND p must not fold to p).
	if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
		if lok {
			if folded, ok := foldAndOrSide(x.Op, l, x.R); ok {
				return folded
			}
		}
		if rok {
			if folded, ok := foldAndOrSide(x.Op, r, x.L); ok {
				return folded
			}
		}
		return x
	}

	if !lok || !rok {
		return x
	}
	if l.IsNull() || r.IsNull() {
		return lit(schema.Null())
	}
	if x.Op.Comparison() {
		c, ok := l.Compare(r)
		if !ok {
			return x // incomparable: keep the runtime error
		}
		switch x.Op {
		case sqlparser.OpEq:
			return lit(schema.Bool(c == 0))
		case sqlparser.OpNeq:
			return lit(schema.Bool(c != 0))
		case sqlparser.OpLt:
			return lit(schema.Bool(c < 0))
		case sqlparser.OpLeq:
			return lit(schema.Bool(c <= 0))
		case sqlparser.OpGt:
			return lit(schema.Bool(c > 0))
		case sqlparser.OpGeq:
			return lit(schema.Bool(c >= 0))
		}
	}
	if x.Op == sqlparser.OpConcat {
		return lit(schema.String(l.Format() + r.Format()))
	}
	return foldArith(x, l, r)
}

// foldAndOrSide folds one literal side of an AND/OR. ok is false when the
// literal does not decide or absorb into the other side.
func foldAndOrSide(op sqlparser.BinaryOp, v schema.Value, other sqlparser.Expr) (sqlparser.Expr, bool) {
	b, isNull := boolOrNull(v)
	if isNull {
		return nil, false // NULL AND p / NULL OR p depend on p's value
	}
	if op == sqlparser.OpAnd {
		if !b {
			return lit(schema.Bool(false)), true
		}
		return other, true // TRUE AND p → p
	}
	if b {
		return lit(schema.Bool(true)), true
	}
	return other, true // FALSE OR p → p
}

func boolOrNull(v schema.Value) (b bool, isNull bool) {
	if v.IsNull() {
		return false, true
	}
	switch v.Type() {
	case schema.TypeBool:
		return v.AsBool(), false
	case schema.TypeInt:
		return v.AsInt() != 0, false
	case schema.TypeFloat:
		return v.AsFloat() != 0, false
	default:
		return false, true
	}
}

func foldArith(x *sqlparser.BinaryExpr, l, r schema.Value) sqlparser.Expr {
	if !l.Type().Numeric() || !r.Type().Numeric() {
		return x // keep the runtime type error
	}
	// Division and modulo are not folded when the divisor is zero: the
	// runtime raises there.
	if (x.Op == sqlparser.OpDiv || x.Op == sqlparser.OpMod) && r.AsFloat() == 0 {
		return x
	}
	if l.Type() == schema.TypeInt && r.Type() == schema.TypeInt && x.Op != sqlparser.OpDiv {
		a, b := l.AsInt(), r.AsInt()
		switch x.Op {
		case sqlparser.OpAdd:
			return lit(schema.Int(a + b))
		case sqlparser.OpSub:
			return lit(schema.Int(a - b))
		case sqlparser.OpMul:
			return lit(schema.Int(a * b))
		case sqlparser.OpMod:
			return lit(schema.Int(a % b))
		}
		return x
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch x.Op {
	case sqlparser.OpAdd:
		return lit(schema.Float(a + b))
	case sqlparser.OpSub:
		return lit(schema.Float(a - b))
	case sqlparser.OpMul:
		return lit(schema.Float(a * b))
	case sqlparser.OpDiv:
		return lit(schema.Float(a / b))
	}
	return x
}

func foldUnary(x *sqlparser.UnaryExpr) sqlparser.Expr {
	v, ok := literal(x.X)
	if !ok {
		return x
	}
	if v.IsNull() {
		return lit(schema.Null())
	}
	if x.Op == sqlparser.UnaryNot {
		b, isNull := boolOrNull(v)
		if isNull {
			return lit(schema.Null())
		}
		return lit(schema.Bool(!b))
	}
	switch v.Type() {
	case schema.TypeInt:
		return lit(schema.Int(-v.AsInt()))
	case schema.TypeFloat:
		return lit(schema.Float(-v.AsFloat()))
	}
	return x
}

// isTrueLiteral reports whether the expression is a constant that a filter
// would accept for every row.
func isTrueLiteral(e sqlparser.Expr) bool {
	v, ok := literal(e)
	if !ok || v.IsNull() {
		return false
	}
	b, isNull := boolOrNull(v)
	return !isNull && b
}
