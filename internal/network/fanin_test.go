package network

import (
	"context"
	"math"
	"strings"
	"testing"

	"paradise/internal/schema"
)

func TestFanInEquivalentToSingleSensor(t *testing.T) {
	st := testStore(t, 900)
	q := "SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y"
	plan := mustPlan(t, q)
	topo := DefaultApartment()

	single, err := Run(context.Background(), topo, plan, st)
	if err != nil {
		t.Fatal(err)
	}
	fan, err := RunFanIn(context.Background(), topo, plan, st, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fan.Result.Rows) != len(single.Result.Rows) {
		t.Fatalf("fan-in result differs: %d vs %d rows",
			len(fan.Result.Rows), len(single.Result.Rows))
	}
	// Final answers agree as multisets. Aggregates are summed in shard
	// order, so float results are compared after rounding.
	count := map[string]int{}
	keys := func(r schema.Row) string {
		parts := make([]string, len(r))
		for i, v := range r {
			if v.Type() == schema.TypeFloat {
				parts[i] = schema.Float(math.Round(v.AsFloat()*1e9) / 1e9).Format()
			} else {
				parts[i] = v.Format()
			}
		}
		return strings.Join(parts, "|")
	}
	for _, r := range single.Result.Rows {
		count[keys(r)]++
	}
	for _, r := range fan.Result.Rows {
		count[keys(r)]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("multiset mismatch at %q", k)
		}
	}
	// Same egress.
	if fan.EgressBytes != single.EgressBytes {
		t.Fatalf("egress differs: %d vs %d", fan.EgressBytes, single.EgressBytes)
	}
}

func TestFanInParallelSensorsComputeFaster(t *testing.T) {
	st := testStore(t, 5000)
	q := "SELECT x, y FROM d WHERE z < 1"
	plan := mustPlan(t, q)
	topo := DefaultApartment()

	single, err := RunFanIn(context.Background(), topo, plan, st, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunFanIn(context.Background(), topo, plan, st, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Sensor compute parallelizes; the shared radio does not. With the
	// slow sensor CPU dominating, 64 sensors must be faster overall.
	if many.SimTime >= single.SimTime {
		t.Fatalf("64 sensors should beat 1: %v vs %v", many.SimTime, single.SimTime)
	}
}

func TestFanInValidation(t *testing.T) {
	st := testStore(t, 10)
	plan := mustPlan(t, "SELECT x FROM d")
	if _, err := RunFanIn(context.Background(), DefaultApartment(), plan, st, 0); err == nil {
		t.Fatal("zero sensors must fail")
	}
}

func TestFanInFirstLinkCarriesAllShards(t *testing.T) {
	st := testStore(t, 1200)
	plan := mustPlan(t, "SELECT * FROM d WHERE z < 1")
	fan, err := RunFanIn(context.Background(), DefaultApartment(), plan, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(context.Background(), DefaultApartment(), plan, st)
	if err != nil {
		t.Fatal(err)
	}
	if fan.Traffic[0].Bytes != single.Traffic[0].Bytes {
		t.Fatalf("first-link volume should be shard-count independent: %d vs %d",
			fan.Traffic[0].Bytes, single.Traffic[0].Bytes)
	}
}
