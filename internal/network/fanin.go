package network

import (
	"context"
	"fmt"
	"time"

	"paradise/internal/engine"
	"paradise/internal/fragment"
	logical "paradise/internal/plan"
	"paradise/internal/schema"
)

// RunFanIn simulates the paper's real node-count situation (Table 1: >= 100
// sensors feed 10-50 appliances feeding one PC): the base data is spread
// over sensorCount sensor nodes, each runs the sensor-level fragment over
// its own shard in parallel, and the shard results fan in over the
// sensor->appliance link before the remaining fragments continue up the
// chain as in Run.
//
// Accounting differences versus the single-sensor Run: the first link
// carries the sum of all shard outputs, while simulated time takes the
// *maximum* shard (parallel sensors) plus the serialized radio transfers
// (the sensors share the low-bandwidth medium).
func RunFanIn(ctx context.Context, topo *Topology, plan *fragment.Plan, src engine.Source, sensorCount int, opts ...Option) (*RunStats, error) {
	if sensorCount < 1 {
		return nil, fmt.Errorf("%w: sensor count must be >= 1", ErrNetwork)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	cfg := runConfig{par: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if len(plan.Fragments) == 0 {
		return nil, fmt.Errorf("%w: empty plan", ErrNetwork)
	}
	first := plan.Fragments[0]
	if first.MinLevel > fragment.LevelSensor {
		// The first fragment already needs an appliance (e.g. a join);
		// fan-in degenerates to the plain run.
		return Run(ctx, topo, plan, src, opts...)
	}

	stats := &RunStats{RawBytes: rawSize(plan, src)}
	hop := make([]HopTraffic, len(topo.Links))
	for i := range hop {
		hop[i] = HopTraffic{Link: topo.Links[i]}
	}

	// Shard the base relation(s) round-robin across the sensors.
	tables := logical.BaseTables(first.Root)
	if len(tables) != 1 {
		return Run(ctx, topo, plan, src)
	}
	rel, rows, err := src.Relation(tables[0])
	if err != nil {
		return nil, err
	}
	shards := make([]schema.Rows, sensorCount)
	for i, r := range rows {
		shards[i%sensorCount] = append(shards[i%sensorCount], r)
	}

	// Each sensor runs the stage-1 fragment on its shard.
	sensor := topo.Nodes[0]
	link := topo.Links[0]
	var maxComputeMs, radioMs float64
	var union schema.Rows
	var outRel *schema.Relation
	inRows := 0
	for _, shard := range shards {
		shardSrc := &overlaySource{base: src, name: tables[0], rel: rel, rows: shard}
		res, err := engine.New(shardSrc).WithParallelism(cfg.par).SelectPlan(ctx, first.Root)
		if err != nil {
			return nil, fmt.Errorf("network: fan-in sensor fragment: %w", err)
		}
		if sensor.Power > 0 {
			c := float64(len(shard)) / sensor.Power / 1000
			if c > maxComputeMs {
				maxComputeMs = c // sensors compute in parallel
			}
		}
		bytes := res.Rows.WireSize()
		hop[0].Bytes += bytes
		hop[0].Rows += len(res.Rows)
		radioMs += link.LatencyMs + float64(bytes)/link.BytesPerMs // shared medium
		union = append(union, res.Rows...)
		outRel = res.Schema
		inRows += len(shard)
	}
	simMs := maxComputeMs + radioMs
	stats.Assignments = append(stats.Assignments, Assignment{
		Fragment: first, Node: sensor, InRows: inRows,
		OutRows: len(union), OutBytes: union.WireSize(),
	})

	// Continue with the remaining fragments from the appliance upward,
	// reusing Run's logic on a sub-plan fed by the union.
	cur := &engine.Result{Schema: outRel.Clone(first.Output), Rows: union}
	pos := 1
	used := make([]bool, len(topo.Nodes))
	used[0] = true
	curName := first.Output

	for _, f := range plan.Fragments[1:] {
		inCount := len(cur.Rows)
		exec := pos
		fellBack := false
		for exec < topo.CloudIndex() &&
			(topo.Nodes[exec].Level < f.MinLevel || topo.Nodes[exec].MemRows < inCount || used[exec]) {
			if topo.Nodes[exec].Level >= f.MinLevel && topo.Nodes[exec].MemRows < inCount {
				fellBack = true
			}
			exec++
		}
		if topo.Nodes[exec].Level < f.MinLevel {
			return nil, fmt.Errorf("%w: no node can run fragment Q%d", ErrNetwork, f.Stage)
		}
		bytes := cur.Rows.WireSize()
		for i := pos; i < exec; i++ {
			hop[i].Bytes += bytes
			hop[i].Rows += len(cur.Rows)
			simMs += topo.Links[i].LatencyMs + float64(bytes)/topo.Links[i].BytesPerMs
		}
		pos = exec
		used[pos] = true
		node := topo.Nodes[pos]

		stageSrc := &overlaySource{base: src, name: curName, rel: cur.Schema, rows: cur.Rows}
		res, err := engine.New(stageSrc).WithParallelism(cfg.par).SelectPlan(ctx, f.Root)
		if err != nil {
			return nil, fmt.Errorf("network: fan-in Q%d on %s: %w", f.Stage, node.Name, err)
		}
		if node.Power > 0 {
			simMs += float64(inCount) / node.Power / 1000
		}
		curName = f.Output
		cur = &engine.Result{Schema: res.Schema.Clone(f.Output), Rows: res.Rows}
		stats.Assignments = append(stats.Assignments, Assignment{
			Fragment: f, Node: node, InRows: inCount,
			OutRows: len(res.Rows), OutBytes: res.Rows.WireSize(), FellBack: fellBack,
		})
	}

	if pos < topo.CloudIndex() {
		bytes := cur.Rows.WireSize()
		for i := pos; i < topo.CloudIndex(); i++ {
			hop[i].Bytes += bytes
			hop[i].Rows += len(cur.Rows)
			simMs += topo.Links[i].LatencyMs + float64(bytes)/topo.Links[i].BytesPerMs
		}
	}

	stats.Result = cur
	stats.Traffic = hop
	stats.EgressBytes = hop[len(hop)-1].Bytes
	stats.SimTime = time.Duration(simMs * float64(time.Millisecond))
	return stats, nil
}
