package network

import (
	"context"
	"errors"
	"strings"
	"testing"

	"paradise/internal/fragment"
	logical "paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

func testStore(t testing.TB, n int) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	for i := 0; i < n; i++ {
		if err := d.Append(schema.Row{
			schema.Float(float64(i%17) + 1), schema.Float(float64(i % 5)),
			schema.Float(float64(i%30) / 10), schema.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func mustPlan(t testing.TB, q string) *fragment.Plan {
	t.Helper()
	sel, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fragment.New().Fragment(sel)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDefaultApartmentValid(t *testing.T) {
	if err := DefaultApartment().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidation(t *testing.T) {
	topo := DefaultApartment()
	topo.Links = topo.Links[:2]
	if err := topo.Validate(); !errors.Is(err, ErrNetwork) {
		t.Fatal("missing links should fail validation")
	}

	topo = DefaultApartment()
	topo.Nodes[4].Level = fragment.LevelPC
	if err := topo.Validate(); !errors.Is(err, ErrNetwork) {
		t.Fatal("non-cloud top should fail")
	}

	topo = DefaultApartment()
	topo.Nodes[1].Level = fragment.LevelCloud
	if err := topo.Validate(); !errors.Is(err, ErrNetwork) {
		t.Fatal("non-monotone levels should fail")
	}

	topo = DefaultApartment()
	topo.Links[0].BytesPerMs = 0
	if err := topo.Validate(); !errors.Is(err, ErrNetwork) {
		t.Fatal("zero bandwidth should fail")
	}
}

func TestRunMatchesDirectExecution(t *testing.T) {
	st := testStore(t, 500)
	q := "SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 1"
	plan := mustPlan(t, q)
	stats, err := Run(context.Background(), DefaultApartment(), plan, st)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := fragment.Execute(context.Background(), plan, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Result.Rows) != len(exec.Result.Rows) {
		t.Fatalf("network run disagrees with plan execution: %d vs %d rows",
			len(stats.Result.Rows), len(exec.Result.Rows))
	}
}

func TestFragmentedEgressBeatsNaive(t *testing.T) {
	st := testStore(t, 2000)
	q := "SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 1"
	plan := mustPlan(t, q)
	topo := DefaultApartment()

	frag, err := Run(context.Background(), topo, plan, st)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := sqlparser.Parse(q)
	selRoot, err := logical.FromAST(sel)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunNaive(context.Background(), topo, selRoot, st)
	if err != nil {
		t.Fatal(err)
	}
	if frag.EgressBytes >= naive.EgressBytes {
		t.Fatalf("fragmentation should reduce egress: %d vs naive %d",
			frag.EgressBytes, naive.EgressBytes)
	}
	if frag.Reduction() <= 1 {
		t.Fatalf("reduction = %v", frag.Reduction())
	}
	// Both compute the same answer.
	if len(frag.Result.Rows) != len(naive.Result.Rows) {
		t.Fatalf("answers differ: %d vs %d rows", len(frag.Result.Rows), len(naive.Result.Rows))
	}
}

func TestAssignmentsRespectLevels(t *testing.T) {
	st := testStore(t, 300)
	q := `SELECT regr_intercept(y, x) OVER (PARTITION BY zavg ORDER BY t)
	      FROM (SELECT x, y, AVG(z) AS zavg, t FROM d
	            WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 0.1)`
	stats, err := Run(context.Background(), DefaultApartment(), mustPlan(t, q), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Assignments) != 4 {
		t.Fatalf("want 4 assignments, got %d", len(stats.Assignments))
	}
	// The paper's placement: sensor, appliance, media center, PC.
	wantNodes := []string{"sensor", "appliance", "mediacenter", "pc"}
	for i, a := range stats.Assignments {
		if a.Node.Name != wantNodes[i] {
			t.Fatalf("Q%d on %s, want %s\n%s", a.Fragment.Stage, a.Node.Name, wantNodes[i], stats.Summary())
		}
		if a.Node.Level < a.Fragment.MinLevel {
			t.Fatalf("Q%d below its capability level", a.Fragment.Stage)
		}
	}
}

func TestWeakNodeFallback(t *testing.T) {
	st := testStore(t, 1000)
	topo := DefaultApartment()
	// Cripple the appliance: it cannot hold the sensor output.
	topo.Nodes[1].MemRows = 10
	q := "SELECT x, y FROM d WHERE x > y"
	stats, err := Run(context.Background(), topo, mustPlan(t, q), st)
	if err != nil {
		t.Fatal(err)
	}
	// The projection fragment must have skipped the appliance.
	for _, a := range stats.Assignments {
		if a.Fragment.MinLevel == fragment.LevelAppliance && a.Node.Name == "appliance" {
			t.Fatalf("appliance should have been skipped:\n%s", stats.Summary())
		}
	}
	sawFallback := false
	for _, a := range stats.Assignments {
		if a.FellBack {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatalf("fallback not recorded:\n%s", stats.Summary())
	}
}

func TestTrafficAccounting(t *testing.T) {
	st := testStore(t, 400)
	stats, err := Run(context.Background(), DefaultApartment(), mustPlan(t, "SELECT x FROM d WHERE z < 1"), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Traffic) != 4 {
		t.Fatalf("4 links expected, got %d", len(stats.Traffic))
	}
	// Traffic must be monotonically non-increasing up the chain for a
	// filter+project query (each stage shrinks data).
	for i := 1; i < len(stats.Traffic); i++ {
		if stats.Traffic[i].Bytes > stats.Traffic[i-1].Bytes {
			t.Fatalf("traffic grows up the chain:\n%s", stats.Summary())
		}
	}
	if stats.EgressBytes != stats.Traffic[3].Bytes {
		t.Fatal("egress must equal last-link traffic")
	}
	if stats.SimTime <= 0 {
		t.Fatal("simulated time must be positive")
	}
	if !strings.Contains(stats.Summary(), "egress") {
		t.Fatal("summary should mention egress")
	}
}

func TestLargerTracesIncreaseReduction(t *testing.T) {
	q := "SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 1"
	reduction := func(n int) float64 {
		st := testStore(t, n)
		stats, err := Run(context.Background(), DefaultApartment(), mustPlan(t, q), st)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Reduction()
	}
	small, large := reduction(200), reduction(5000)
	if large <= small {
		t.Fatalf("aggregation reduction should grow with trace size: %v -> %v", small, large)
	}
}

func TestRunNaiveShipsEverything(t *testing.T) {
	st := testStore(t, 100)
	sel, _ := sqlparser.Parse("SELECT x FROM d WHERE z < 0.1")
	selRoot, err := logical.FromAST(sel)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunNaive(context.Background(), DefaultApartment(), selRoot, st)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, _ := st.Relation("d")
	if stats.EgressBytes != rows.WireSize() {
		t.Fatalf("naive egress %d != raw size %d", stats.EgressBytes, rows.WireSize())
	}
}
