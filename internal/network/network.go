package network

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"paradise/internal/engine"
	"paradise/internal/fragment"
	logical "paradise/internal/plan"
	"paradise/internal/schema"
)

// ErrNetwork wraps simulation errors.
var ErrNetwork = errors.New("network: simulation error")

// Node is one processing peer of the vertical chain.
type Node struct {
	// Name identifies the node ("sensor", "appliance", ...).
	Name string
	// Level is the node's capability rung (Table 1).
	Level fragment.Level
	// Power is the relative processing speed in rows per microsecond.
	Power float64
	// MemRows caps how many input rows the node can materialize. A
	// fragment whose input exceeds the cap triggers the §3.2 fallback:
	// "the raw data will be sent to a more powerful node".
	MemRows int
}

// Link connects two adjacent chain nodes.
type Link struct {
	// From and To name the lower and upper node.
	From, To string
	// BytesPerMs is the bandwidth.
	BytesPerMs float64
	// LatencyMs is the per-shipment latency.
	LatencyMs float64
}

// Topology is a bottom-up chain of nodes. Base sensor data lives at
// Nodes[0]; Links[i] connects Nodes[i] to Nodes[i+1].
type Topology struct {
	Nodes []*Node
	Links []*Link
}

// Validate checks chain consistency.
func (t *Topology) Validate() error {
	if len(t.Nodes) < 2 {
		return fmt.Errorf("%w: chain needs at least two nodes", ErrNetwork)
	}
	if len(t.Links) != len(t.Nodes)-1 {
		return fmt.Errorf("%w: %d nodes need %d links, have %d",
			ErrNetwork, len(t.Nodes), len(t.Nodes)-1, len(t.Links))
	}
	for i, l := range t.Links {
		if l.From != t.Nodes[i].Name || l.To != t.Nodes[i+1].Name {
			return fmt.Errorf("%w: link %d (%s->%s) does not match chain order (%s->%s)",
				ErrNetwork, i, l.From, l.To, t.Nodes[i].Name, t.Nodes[i+1].Name)
		}
		if l.BytesPerMs <= 0 {
			return fmt.Errorf("%w: link %s->%s has non-positive bandwidth", ErrNetwork, l.From, l.To)
		}
	}
	for i := 1; i < len(t.Nodes); i++ {
		if t.Nodes[i].Level < t.Nodes[i-1].Level {
			return fmt.Errorf("%w: node %s (%s) less capable than the node below it",
				ErrNetwork, t.Nodes[i].Name, t.Nodes[i].Level)
		}
	}
	if t.Nodes[len(t.Nodes)-1].Level != fragment.LevelCloud {
		return fmt.Errorf("%w: top node must be the cloud", ErrNetwork)
	}
	return nil
}

// CloudIndex returns the index of the top node.
func (t *Topology) CloudIndex() int { return len(t.Nodes) - 1 }

// EgressLink returns the last link — the one crossing the apartment
// boundary into the cloud.
func (t *Topology) EgressLink() *Link { return t.Links[len(t.Links)-1] }

// DefaultApartment builds the Figure 3 chain: sensor → appliance →
// media center → apartment PC → cloud. Power and bandwidth values model the
// relative capabilities of Table 1 (absolute values are arbitrary but
// consistent: each rung is roughly an order of magnitude faster).
func DefaultApartment() *Topology {
	return &Topology{
		Nodes: []*Node{
			{Name: "sensor", Level: fragment.LevelSensor, Power: 0.01, MemRows: 50_000},
			{Name: "appliance", Level: fragment.LevelAppliance, Power: 0.1, MemRows: 500_000},
			{Name: "mediacenter", Level: fragment.LevelAppliance, Power: 0.5, MemRows: 2_000_000},
			{Name: "pc", Level: fragment.LevelPC, Power: 2, MemRows: 20_000_000},
			{Name: "cloud", Level: fragment.LevelCloud, Power: 20, MemRows: 1 << 40},
		},
		Links: []*Link{
			{From: "sensor", To: "appliance", BytesPerMs: 31, LatencyMs: 5},         // 250 kbit/s sensor radio
			{From: "appliance", To: "mediacenter", BytesPerMs: 1_250, LatencyMs: 2}, // 10 Mbit/s home network
			{From: "mediacenter", To: "pc", BytesPerMs: 12_500, LatencyMs: 1},       // 100 Mbit/s LAN
			{From: "pc", To: "cloud", BytesPerMs: 1_250, LatencyMs: 20},             // 10 Mbit/s uplink
		},
	}
}

// Option configures a simulated run.
type Option func(*runConfig)

type runConfig struct{ par int }

// WithParallelism sets how many worker goroutines each node may use for
// its fragment's pipeline (intra-fragment, morsel-driven parallelism —
// the vertical placement is unchanged): n <= 0 means
// runtime.GOMAXPROCS(0), 1 (the default) keeps execution serial. Results
// and the Figure 3 accounting are identical either way; the knob only
// changes wall-clock time on multi-core nodes.
func WithParallelism(n int) Option {
	return func(c *runConfig) { c.par = n }
}

// HopTraffic records bytes shipped over one link during a run.
type HopTraffic struct {
	Link  *Link
	Bytes int
	Rows  int
}

// Assignment records where a fragment executed.
type Assignment struct {
	Fragment *fragment.Fragment
	Node     *Node
	InRows   int
	OutRows  int
	OutBytes int
	// FellBack is set when the §3.2 weak-node fallback forwarded raw data
	// past the intended node.
	FellBack bool
}

// RunStats is the outcome of a simulated execution.
type RunStats struct {
	Result      *engine.Result
	Assignments []Assignment
	Traffic     []HopTraffic
	// EgressBytes is the data volume leaving the apartment (d′).
	EgressBytes int
	// RawBytes is the size of the raw base data at the sensor (d).
	RawBytes int
	// SimTime is the simulated wall-clock: compute plus transfer.
	SimTime time.Duration
}

// Reduction returns |d| / |d′| — how much less data leaves the apartment
// than the raw data the naive execution would ship.
func (r *RunStats) Reduction() float64 {
	if r.EgressBytes == 0 {
		if r.RawBytes == 0 {
			return 1
		}
		return float64(r.RawBytes)
	}
	return float64(r.RawBytes) / float64(r.EgressBytes)
}

// Summary renders the run for reports.
func (r *RunStats) Summary() string {
	var b strings.Builder
	for _, a := range r.Assignments {
		fb := ""
		if a.FellBack {
			fb = " [fallback]"
		}
		est := ""
		if a.Fragment.EstRows > 0 || a.Fragment.EstBytes > 0 {
			est = fmt.Sprintf(" est=%d rows/%d bytes", a.Fragment.EstRows, a.Fragment.EstBytes)
		}
		fmt.Fprintf(&b, "Q%d @ %-12s in=%-8d out=%-8d bytes=%-10d%s%s\n",
			a.Fragment.Stage, a.Node.Name, a.InRows, a.OutRows, a.OutBytes, est, fb)
	}
	for _, h := range r.Traffic {
		fmt.Fprintf(&b, "link %-12s -> %-12s rows=%-8d bytes=%d\n", h.Link.From, h.Link.To, h.Rows, h.Bytes)
	}
	fmt.Fprintf(&b, "egress (d'): %d bytes, raw (d): %d bytes, reduction %.1fx, simulated time %v\n",
		r.EgressBytes, r.RawBytes, r.Reduction(), r.SimTime)
	return b.String()
}

// Run executes a fragment plan over the topology. Base relations are read
// from src (conceptually resident at the bottom node). Each fragment runs on
// the lowest node at or above the current data position that satisfies its
// capability level and memory cap; the fragment's input ships hop by hop to
// that node, with bytes and time accounted per link.
//
// Run is Open followed by a full drain: the streaming path and this
// materialized path share one pipeline and one accounting routine, so a
// cursor that drains a Stream observes byte-identical RunStats.
func Run(ctx context.Context, topo *Topology, plan *fragment.Plan, src engine.Source, opts ...Option) (*RunStats, error) {
	st, err := Open(ctx, topo, plan, src, opts...)
	if err != nil {
		return nil, err
	}
	rows, err := schema.DrainIterator(st) // closes st, also on error
	if err != nil {
		return nil, err
	}
	stats, err := st.Stats()
	if err != nil {
		return nil, err
	}
	stats.Result = &engine.Result{Schema: st.Schema(), Rows: rows}
	return stats, nil
}

// Stream is an opened chain execution: the plan's fragments wired into one
// lazy batch pipeline (fragment.OpenChain) whose final output the consumer
// pulls batch-at-a-time. Node placement, per-link traffic and simulated
// time — the Figure 3 quantities — are derived from the per-stage
// accounting once the chain is drained, so they are exactly the stats a
// materialized Run would report.
//
// The consumer must Close the stream (idempotent); Close drains the
// remaining pipeline first, because every node is a store-and-forward hop
// that ships its whole output regardless of how much the requester reads.
type Stream struct {
	topo   *Topology
	plan   *fragment.Plan
	chain  *fragment.Chain
	baseIn int // input rows of the first fragment (base relations)
	raw    int // wire size of the base relations the plan reads
	stats  *RunStats
	err    error
	closed bool
}

// Open validates the topology (including that every fragment's capability
// level is satisfiable at all — infeasible plans fail here, not after the
// consumer has seen rows) and wires the plan into a lazy pipeline bound to
// ctx. No query execution happens yet — the accounting does probe the base
// relations once up front to size |d| (raw bytes and first-fragment input
// rows); cancellation is checked per batch at every scan once the consumer
// starts pulling.
func Open(ctx context.Context, topo *Topology, plan *fragment.Plan, src engine.Source, opts ...Option) (*Stream, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	cfg := runConfig{par: 1}
	for _, o := range opts {
		o(&cfg)
	}
	top := topo.Nodes[topo.CloudIndex()]
	for _, f := range plan.Fragments {
		if f.MinLevel > top.Level {
			return nil, fmt.Errorf("%w: no node can run fragment Q%d (needs %s)",
				ErrNetwork, f.Stage, f.MinLevel)
		}
	}
	chain, err := fragment.OpenChain(ctx, plan, src, fragment.WithParallelism(cfg.par))
	if err != nil {
		return nil, fmt.Errorf("network: open chain: %w", err)
	}
	baseIn, raw := baseStats(plan, src)
	return &Stream{
		topo:   topo,
		plan:   plan,
		chain:  chain,
		baseIn: baseIn,
		raw:    raw,
	}, nil
}

// Schema is the output relation of the final fragment.
func (s *Stream) Schema() *schema.Relation { return s.chain.Schema() }

// Next pulls the next batch of the final fragment's output. A nil batch
// means the chain is exhausted; the caller should then Close and read
// Stats.
func (s *Stream) Next() (schema.Rows, error) {
	if s.closed {
		return nil, s.err
	}
	batch, err := s.chain.Iterator().Next()
	if err != nil && s.err == nil {
		s.err = err
	}
	return batch, err
}

// Close drains the remaining pipeline (finalizing every stage's
// accounting), then derives the placement stats. Idempotent.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if err := s.chain.Close(); err != nil && s.err == nil {
		s.err = err
	}
	if s.err != nil {
		return
	}
	s.stats, s.err = placeStats(s.topo, s.plan, s.chain.Stages(), s.baseIn, s.raw)
}

// Stats returns the Figure 3 accounting of the fully drained chain,
// closing the stream if the caller has not already. Stats.Result is nil on
// the streaming path — the rows went to the consumer, batch by batch.
func (s *Stream) Stats() (*RunStats, error) {
	s.Close()
	if s.err != nil {
		return nil, s.err
	}
	return s.stats, nil
}

// placeStats replays the paper's placement walk over the recorded per-stage
// accounting: each fragment runs on the lowest unused node at or above the
// current data position that satisfies its capability level and memory cap
// — each node runs at most one fragment except the cloud, which absorbs any
// overflow — and the fragment's input ships hop by hop to that node, with
// bytes and time accounted per link.
func placeStats(topo *Topology, plan *fragment.Plan, stages []fragment.StageResult, baseIn, raw int) (*RunStats, error) {
	stats := &RunStats{RawBytes: raw}
	hop := make([]HopTraffic, len(topo.Links))
	for i := range hop {
		hop[i] = HopTraffic{Link: topo.Links[i]}
	}

	pos := 0 // index of the node currently holding the data
	used := make([]bool, len(topo.Nodes))
	var simMs float64
	prevRows, prevBytes := 0, 0

	for i, f := range plan.Fragments {
		// Input row count for memory checks: the first fragment reads base
		// data directly, later fragments read the previous stage's output.
		inRows := prevRows
		if i == 0 {
			inRows = baseIn
		}

		// The cost-based placement (when computed) raises the target rung
		// above the MinLevel floor; the floor itself is never lowered.
		want := f.EffectiveLevel()

		exec := pos
		fellBack := false
		for exec < topo.CloudIndex() &&
			(topo.Nodes[exec].Level < want || topo.Nodes[exec].MemRows < inRows || used[exec]) {
			if topo.Nodes[exec].Level >= want && topo.Nodes[exec].MemRows < inRows {
				fellBack = true // capable but too weak: §3.2 fallback
			}
			exec++
		}
		if topo.Nodes[exec].Level < f.MinLevel {
			return nil, fmt.Errorf("%w: no node can run fragment Q%d (needs %s)",
				ErrNetwork, f.Stage, f.MinLevel)
		}

		// Ship the current data up to the execution node. Stage 1's input
		// is the raw base data resident at the bottom node — when the first
		// fragment runs above it (a join needing an appliance, a placement
		// decision), that shipment crosses links like any other.
		shipRows, shipBytes := prevRows, prevBytes
		if i == 0 {
			shipRows, shipBytes = baseIn, raw
		}
		for h := pos; h < exec; h++ {
			hop[h].Bytes += shipBytes
			hop[h].Rows += shipRows
			simMs += topo.Links[h].LatencyMs + float64(shipBytes)/topo.Links[h].BytesPerMs
		}
		pos = exec
		used[pos] = true
		node := topo.Nodes[pos]
		if node.Power > 0 {
			simMs += float64(inRows) / node.Power / 1000
		}

		stats.Assignments = append(stats.Assignments, Assignment{
			Fragment: f, Node: node, InRows: inRows,
			OutRows: stages[i].Rows, OutBytes: stages[i].Bytes,
			FellBack: fellBack,
		})
		prevRows, prevBytes = stages[i].Rows, stages[i].Bytes
	}

	// The final result always travels to the cloud (the requester).
	for h := pos; h < topo.CloudIndex(); h++ {
		hop[h].Bytes += prevBytes
		hop[h].Rows += prevRows
		simMs += topo.Links[h].LatencyMs + float64(prevBytes)/topo.Links[h].BytesPerMs
	}

	stats.Traffic = hop
	stats.EgressBytes = hop[len(hop)-1].Bytes
	stats.SimTime = time.Duration(simMs * float64(time.Millisecond))
	return stats, nil
}

// RunNaive simulates the baseline without fragmentation: the raw base data
// ships all the way to the cloud, which executes the whole logical plan
// there. The plan is optimized against the source before execution; the
// caller cedes ownership of the tree.
func RunNaive(ctx context.Context, topo *Topology, root logical.Node, src engine.Source, opts ...Option) (*RunStats, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	cfg := runConfig{par: 1}
	for _, o := range opts {
		o(&cfg)
	}
	stats := &RunStats{}

	// Total raw bytes of every base relation the query touches.
	raw := 0
	rawRows := 0
	for _, tbl := range logical.BaseTables(root) {
		_, rows, err := src.Relation(tbl)
		if err != nil {
			return nil, fmt.Errorf("network: naive run: %w", err)
		}
		raw += rows.WireSize()
		rawRows += len(rows)
	}
	stats.RawBytes = raw

	hop := make([]HopTraffic, len(topo.Links))
	var simMs float64
	for i := range hop {
		hop[i] = HopTraffic{Link: topo.Links[i], Bytes: raw, Rows: rawRows}
		simMs += topo.Links[i].LatencyMs + float64(raw)/topo.Links[i].BytesPerMs
	}

	eng := engine.New(src).WithParallelism(cfg.par)
	root = logical.Optimize(root, logical.Options{Catalog: eng.Catalog(), CrossBlock: true})
	res, err := eng.SelectPlan(ctx, root)
	if err != nil {
		return nil, fmt.Errorf("network: naive cloud execution: %w", err)
	}
	cloud := topo.Nodes[topo.CloudIndex()]
	if cloud.Power > 0 {
		simMs += float64(rawRows) / cloud.Power / 1000
	}

	stats.Result = res
	stats.Traffic = hop
	stats.EgressBytes = raw
	stats.SimTime = time.Duration(simMs * float64(time.Millisecond))
	stats.Assignments = []Assignment{{Node: cloud, InRows: rawRows, OutRows: len(res.Rows), OutBytes: res.Rows.WireSize()}}
	return stats, nil
}

// overlaySource exposes an intermediate result under its stage name on top
// of the base source. It implements engine.BatchSource so the next
// fragment's scan streams the overlay rows (with any pushed-down filter and
// projection) instead of re-materializing them.
type overlaySource struct {
	base engine.Source
	name string
	rel  *schema.Relation
	rows schema.Rows
}

func (o *overlaySource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	if name == o.name {
		return o.rel, o.rows, nil
	}
	return o.base.Relation(name)
}

func (o *overlaySource) RelationSchema(name string) (*schema.Relation, error) {
	if name == o.name {
		return o.rel, nil
	}
	return engine.RelationSchema(o.base, name)
}

func (o *overlaySource) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	if name == o.name {
		return schema.ScanRows(o.rows, sc), nil
	}
	return engine.OpenScan(ctx, o.base, name, sc)
}

// rawSize measures the wire size of every base relation the plan reads —
// the |d| of Figure 3. One definition for every run flavour: it delegates
// to baseStats so streaming, materialized and fan-in stats can never
// disagree on what counts as raw data.
func rawSize(plan *fragment.Plan, src engine.Source) int {
	_, raw := baseStats(plan, src)
	return raw
}

// relationStatser is the optional fast path for sizing base relations:
// storage.Store implements it with O(1) cached counters, so opening a
// streaming run does not materialize (or even walk) the base tables.
type relationStatser interface {
	RelationStats(name string) (rows, wireBytes int, err error)
}

// baseStats measures, in one pass over the base relations, the input row
// count of the first fragment and the wire size of every base relation the
// plan reads — the |d| of Figure 3. Sources without the O(1) stats fast
// path are materialized once per distinct table.
func baseStats(plan *fragment.Plan, src engine.Source) (baseIn, raw int) {
	type stat struct{ rows, bytes int }
	cache := map[string]stat{}
	load := func(t string) stat {
		if s, ok := cache[t]; ok {
			return s
		}
		var s stat
		if rs, ok := src.(relationStatser); ok {
			if rows, bytes, err := rs.RelationStats(t); err == nil {
				s = stat{rows: rows, bytes: bytes}
				cache[t] = s
				return s
			}
		}
		if _, rows, err := src.Relation(t); err == nil {
			s = stat{rows: len(rows), bytes: rows.WireSize()}
		}
		cache[t] = s
		return s
	}
	for _, t := range logical.BaseTables(plan.Fragments[0].Root) {
		baseIn += load(t).rows
	}
	seen := map[string]bool{}
	for _, t := range logical.BaseTables(plan.Root) {
		if seen[t] {
			continue
		}
		seen[t] = true
		raw += load(t).bytes
	}
	return baseIn, raw
}
