// Package network simulates the vertical peer-to-peer processing chain of
// Figure 3: sensors at the bottom, appliances and a home media center above
// them, the apartment PC, and the provider's cloud server on top. Fragments
// produced by the fragment package are placed on the lowest capable node and
// executed bottom-up; the simulator accounts rows, bytes and time on every
// link — in particular the bytes d′ that leave the apartment, the quantity
// the paper's privacy argument is about.
//
// The paper's testbed (real sensors, a real apartment PC, a real cloud) is
// replaced by this simulator; capability levels, relative compute power and
// link bandwidths are modelled, so "who can run what" and "what ships where"
// — the two quantities the paper reasons about — are measured exactly.
package network

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"paradise/internal/engine"
	"paradise/internal/fragment"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrNetwork wraps simulation errors.
var ErrNetwork = errors.New("network: simulation error")

// Node is one processing peer of the vertical chain.
type Node struct {
	// Name identifies the node ("sensor", "appliance", ...).
	Name string
	// Level is the node's capability rung (Table 1).
	Level fragment.Level
	// Power is the relative processing speed in rows per microsecond.
	Power float64
	// MemRows caps how many input rows the node can materialize. A
	// fragment whose input exceeds the cap triggers the §3.2 fallback:
	// "the raw data will be sent to a more powerful node".
	MemRows int
}

// Link connects two adjacent chain nodes.
type Link struct {
	// From and To name the lower and upper node.
	From, To string
	// BytesPerMs is the bandwidth.
	BytesPerMs float64
	// LatencyMs is the per-shipment latency.
	LatencyMs float64
}

// Topology is a bottom-up chain of nodes. Base sensor data lives at
// Nodes[0]; Links[i] connects Nodes[i] to Nodes[i+1].
type Topology struct {
	Nodes []*Node
	Links []*Link
}

// Validate checks chain consistency.
func (t *Topology) Validate() error {
	if len(t.Nodes) < 2 {
		return fmt.Errorf("%w: chain needs at least two nodes", ErrNetwork)
	}
	if len(t.Links) != len(t.Nodes)-1 {
		return fmt.Errorf("%w: %d nodes need %d links, have %d",
			ErrNetwork, len(t.Nodes), len(t.Nodes)-1, len(t.Links))
	}
	for i, l := range t.Links {
		if l.From != t.Nodes[i].Name || l.To != t.Nodes[i+1].Name {
			return fmt.Errorf("%w: link %d (%s->%s) does not match chain order (%s->%s)",
				ErrNetwork, i, l.From, l.To, t.Nodes[i].Name, t.Nodes[i+1].Name)
		}
		if l.BytesPerMs <= 0 {
			return fmt.Errorf("%w: link %s->%s has non-positive bandwidth", ErrNetwork, l.From, l.To)
		}
	}
	for i := 1; i < len(t.Nodes); i++ {
		if t.Nodes[i].Level < t.Nodes[i-1].Level {
			return fmt.Errorf("%w: node %s (%s) less capable than the node below it",
				ErrNetwork, t.Nodes[i].Name, t.Nodes[i].Level)
		}
	}
	if t.Nodes[len(t.Nodes)-1].Level != fragment.LevelCloud {
		return fmt.Errorf("%w: top node must be the cloud", ErrNetwork)
	}
	return nil
}

// CloudIndex returns the index of the top node.
func (t *Topology) CloudIndex() int { return len(t.Nodes) - 1 }

// EgressLink returns the last link — the one crossing the apartment
// boundary into the cloud.
func (t *Topology) EgressLink() *Link { return t.Links[len(t.Links)-1] }

// DefaultApartment builds the Figure 3 chain: sensor → appliance →
// media center → apartment PC → cloud. Power and bandwidth values model the
// relative capabilities of Table 1 (absolute values are arbitrary but
// consistent: each rung is roughly an order of magnitude faster).
func DefaultApartment() *Topology {
	return &Topology{
		Nodes: []*Node{
			{Name: "sensor", Level: fragment.LevelSensor, Power: 0.01, MemRows: 50_000},
			{Name: "appliance", Level: fragment.LevelAppliance, Power: 0.1, MemRows: 500_000},
			{Name: "mediacenter", Level: fragment.LevelAppliance, Power: 0.5, MemRows: 2_000_000},
			{Name: "pc", Level: fragment.LevelPC, Power: 2, MemRows: 20_000_000},
			{Name: "cloud", Level: fragment.LevelCloud, Power: 20, MemRows: 1 << 40},
		},
		Links: []*Link{
			{From: "sensor", To: "appliance", BytesPerMs: 31, LatencyMs: 5},         // 250 kbit/s sensor radio
			{From: "appliance", To: "mediacenter", BytesPerMs: 1_250, LatencyMs: 2}, // 10 Mbit/s home network
			{From: "mediacenter", To: "pc", BytesPerMs: 12_500, LatencyMs: 1},       // 100 Mbit/s LAN
			{From: "pc", To: "cloud", BytesPerMs: 1_250, LatencyMs: 20},             // 10 Mbit/s uplink
		},
	}
}

// HopTraffic records bytes shipped over one link during a run.
type HopTraffic struct {
	Link  *Link
	Bytes int
	Rows  int
}

// Assignment records where a fragment executed.
type Assignment struct {
	Fragment *fragment.Fragment
	Node     *Node
	InRows   int
	OutRows  int
	OutBytes int
	// FellBack is set when the §3.2 weak-node fallback forwarded raw data
	// past the intended node.
	FellBack bool
}

// RunStats is the outcome of a simulated execution.
type RunStats struct {
	Result      *engine.Result
	Assignments []Assignment
	Traffic     []HopTraffic
	// EgressBytes is the data volume leaving the apartment (d′).
	EgressBytes int
	// RawBytes is the size of the raw base data at the sensor (d).
	RawBytes int
	// SimTime is the simulated wall-clock: compute plus transfer.
	SimTime time.Duration
}

// Reduction returns |d| / |d′| — how much less data leaves the apartment
// than the raw data the naive execution would ship.
func (r *RunStats) Reduction() float64 {
	if r.EgressBytes == 0 {
		if r.RawBytes == 0 {
			return 1
		}
		return float64(r.RawBytes)
	}
	return float64(r.RawBytes) / float64(r.EgressBytes)
}

// Summary renders the run for reports.
func (r *RunStats) Summary() string {
	var b strings.Builder
	for _, a := range r.Assignments {
		fb := ""
		if a.FellBack {
			fb = " [fallback]"
		}
		fmt.Fprintf(&b, "Q%d @ %-12s in=%-8d out=%-8d bytes=%-10d%s\n",
			a.Fragment.Stage, a.Node.Name, a.InRows, a.OutRows, a.OutBytes, fb)
	}
	for _, h := range r.Traffic {
		fmt.Fprintf(&b, "link %-12s -> %-12s rows=%-8d bytes=%d\n", h.Link.From, h.Link.To, h.Rows, h.Bytes)
	}
	fmt.Fprintf(&b, "egress (d'): %d bytes, raw (d): %d bytes, reduction %.1fx, simulated time %v\n",
		r.EgressBytes, r.RawBytes, r.Reduction(), r.SimTime)
	return b.String()
}

// Run executes a fragment plan over the topology. Base relations are read
// from src (conceptually resident at the bottom node). Each fragment runs on
// the lowest node at or above the current data position that satisfies its
// capability level and memory cap; the fragment's input ships hop by hop to
// that node, with bytes and time accounted per link.
func Run(topo *Topology, plan *fragment.Plan, src engine.Source) (*RunStats, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	stats := &RunStats{}
	stats.RawBytes = rawSize(plan, src)

	hop := make([]HopTraffic, len(topo.Links))
	for i := range hop {
		hop[i] = HopTraffic{Link: topo.Links[i]}
	}

	pos := 0 // index of the node currently holding the data
	used := make([]bool, len(topo.Nodes))
	var curName string
	var curRel *schema.Relation
	var curRows schema.Rows
	var simMs float64

	for _, f := range plan.Fragments {
		// Input row count for memory checks: base relations are only
		// known to the engine, so measure via the materialized input when
		// available; the first fragment reads base data directly.
		inRows := len(curRows)
		if curRel == nil {
			inRows = baseRows(f, src)
		}

		// Find the execution node: the lowest unused node at or above the
		// current data position that is capable and strong enough. Each
		// node runs at most one fragment — the paper's chain assigns the
		// appliance and the media center consecutive fragments — except
		// the cloud, which absorbs any overflow.
		exec := pos
		fellBack := false
		for exec < topo.CloudIndex() &&
			(topo.Nodes[exec].Level < f.MinLevel || topo.Nodes[exec].MemRows < inRows || used[exec]) {
			if topo.Nodes[exec].Level >= f.MinLevel && topo.Nodes[exec].MemRows < inRows {
				fellBack = true // capable but too weak: §3.2 fallback
			}
			exec++
		}
		if topo.Nodes[exec].Level < f.MinLevel {
			return nil, fmt.Errorf("%w: no node can run fragment Q%d (needs %s)",
				ErrNetwork, f.Stage, f.MinLevel)
		}

		// Ship current data up to the execution node.
		if curRel != nil {
			bytes := curRows.WireSize()
			for i := pos; i < exec; i++ {
				hop[i].Bytes += bytes
				hop[i].Rows += len(curRows)
				simMs += topo.Links[i].LatencyMs + float64(bytes)/topo.Links[i].BytesPerMs
			}
		}
		pos = exec
		used[pos] = true
		node := topo.Nodes[pos]

		// Execute the fragment on this node. The engine pipeline streams
		// batch-at-a-time, so the node's intermediates stay bounded by
		// batch size; the node is a store-and-forward hop, so its full
		// output is still collected before it ships up the chain.
		stageSrc := engine.Source(src)
		if curRel != nil {
			stageSrc = &overlaySource{base: src, name: curName, rel: curRel, rows: curRows}
		}
		outRel, it, err := engine.New(stageSrc).Open(f.Query)
		if err != nil {
			return nil, fmt.Errorf("network: Q%d on %s: %w", f.Stage, node.Name, err)
		}
		outRows, err := schema.DrainIterator(it)
		if err != nil {
			return nil, fmt.Errorf("network: Q%d on %s: %w", f.Stage, node.Name, err)
		}
		outBytes := outRows.WireSize()
		if node.Power > 0 {
			simMs += float64(inRows) / node.Power / 1000
		}

		curName = f.Output
		curRel = outRel.Clone(f.Output)
		curRows = outRows
		stats.Assignments = append(stats.Assignments, Assignment{
			Fragment: f, Node: node, InRows: inRows,
			OutRows: len(outRows), OutBytes: outBytes,
			FellBack: fellBack,
		})
		stats.Result = &engine.Result{Schema: curRel, Rows: curRows}
	}

	// The final result always travels to the cloud (the requester).
	if curRel != nil && pos < topo.CloudIndex() {
		bytes := curRows.WireSize()
		for i := pos; i < topo.CloudIndex(); i++ {
			hop[i].Bytes += bytes
			hop[i].Rows += len(curRows)
			simMs += topo.Links[i].LatencyMs + float64(bytes)/topo.Links[i].BytesPerMs
		}
	}

	stats.Traffic = hop
	stats.EgressBytes = hop[len(hop)-1].Bytes
	stats.SimTime = time.Duration(simMs * float64(time.Millisecond))
	return stats, nil
}

// RunNaive simulates the baseline without fragmentation: the raw base data
// ships all the way to the cloud, which executes the whole query there.
func RunNaive(topo *Topology, q *sqlparser.Select, src engine.Source) (*RunStats, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	stats := &RunStats{}

	// Total raw bytes of every base relation the query touches.
	raw := 0
	rawRows := 0
	for _, tbl := range sqlparser.BaseTables(q) {
		_, rows, err := src.Relation(tbl)
		if err != nil {
			return nil, fmt.Errorf("network: naive run: %w", err)
		}
		raw += rows.WireSize()
		rawRows += len(rows)
	}
	stats.RawBytes = raw

	hop := make([]HopTraffic, len(topo.Links))
	var simMs float64
	for i := range hop {
		hop[i] = HopTraffic{Link: topo.Links[i], Bytes: raw, Rows: rawRows}
		simMs += topo.Links[i].LatencyMs + float64(raw)/topo.Links[i].BytesPerMs
	}

	res, err := engine.New(src).Select(q)
	if err != nil {
		return nil, fmt.Errorf("network: naive cloud execution: %w", err)
	}
	cloud := topo.Nodes[topo.CloudIndex()]
	if cloud.Power > 0 {
		simMs += float64(rawRows) / cloud.Power / 1000
	}

	stats.Result = res
	stats.Traffic = hop
	stats.EgressBytes = raw
	stats.SimTime = time.Duration(simMs * float64(time.Millisecond))
	stats.Assignments = []Assignment{{Node: cloud, InRows: rawRows, OutRows: len(res.Rows), OutBytes: res.Rows.WireSize()}}
	return stats, nil
}

// overlaySource exposes an intermediate result under its stage name on top
// of the base source. It implements engine.BatchSource so the next
// fragment's scan streams the overlay rows (with any pushed-down filter and
// projection) instead of re-materializing them.
type overlaySource struct {
	base engine.Source
	name string
	rel  *schema.Relation
	rows schema.Rows
}

func (o *overlaySource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	if name == o.name {
		return o.rel, o.rows, nil
	}
	return o.base.Relation(name)
}

func (o *overlaySource) RelationSchema(name string) (*schema.Relation, error) {
	if name == o.name {
		return o.rel, nil
	}
	return engine.RelationSchema(o.base, name)
}

func (o *overlaySource) OpenScan(name string, sc schema.Scan) (schema.RowIterator, error) {
	if name == o.name {
		return schema.ScanRows(o.rows, sc), nil
	}
	return engine.OpenScan(o.base, name, sc)
}

// rawSize measures the wire size of every base relation the plan reads.
func rawSize(plan *fragment.Plan, src engine.Source) int {
	total := 0
	seen := map[string]bool{}
	for _, t := range sqlparser.BaseTables(plan.Original) {
		if seen[t] {
			continue
		}
		seen[t] = true
		if _, rows, err := src.Relation(t); err == nil {
			total += rows.WireSize()
		}
	}
	return total
}

// baseRows counts the input rows of a fragment reading base relations.
func baseRows(f *fragment.Fragment, src engine.Source) int {
	total := 0
	for _, t := range sqlparser.BaseTables(f.Query) {
		if _, rows, err := src.Relation(t); err == nil {
			total += len(rows)
		}
	}
	return total
}
