// Package network simulates the vertical peer-to-peer processing chain of
// Figure 3: sensors at the bottom, appliances and a home media center above
// them, the apartment PC, and the provider's cloud server on top. Fragments
// produced by the fragment package are placed on the lowest capable node and
// executed bottom-up; the simulator accounts rows, bytes and time on every
// link — in particular the bytes d′ that leave the apartment, the quantity
// the paper's privacy argument is about.
//
// The paper's testbed (real sensors, a real apartment PC, a real cloud) is
// replaced by this simulator; capability levels, relative compute power and
// link bandwidths are modelled, so "who can run what" and "what ships where"
// — the two quantities the paper reasons about — are measured exactly.
//
// Placement consumes only the per-stage accounting, never the rows, so the
// streaming path (Open + drain) and the materialized path (Run) report
// byte-identical RunStats by construction — at any WithParallelism
// setting, since a parallel chain's per-stage sums equal the serial ones.
package network
