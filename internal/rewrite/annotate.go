package rewrite

import (
	"fmt"
	"strings"

	"paradise/internal/plan"
	"paradise/internal/policy"
	"paradise/internal/sqlparser"
)

// RewritePlan rewrites the statement under the policy module and lowers the
// result straight into the logical plan IR, with every policy-introduced
// transformation annotated on the operator that carries it: injected
// conditions become provenance on Filter nodes (or on the Scan they are
// pushed into), suppressed attributes and compression rewrites annotate the
// projection, mandated aggregations annotate the Aggregate node. Denials
// are structured (*Denial) exactly as with Rewrite, so PolicyViolation
// reporting is unchanged.
func (rw *Rewriter) RewritePlan(sel *sqlparser.Select, mod *policy.Module) (plan.Node, *Report, error) {
	rewritten, rep, err := rw.Rewrite(sel, mod)
	if err != nil {
		return nil, nil, err
	}
	root, err := plan.FromAST(rewritten)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	rep.Annotate(root, mod.ID)
	return root, rep, nil
}

// Annotate attaches policy provenance to a lowered plan of the rewritten
// query: every operator (or conjunct) this report introduced is marked with
// origin, module, rule and the affected columns, so EXPLAIN output and
// audits can point at the exact plan node a policy produced. Conditions are
// matched by their canonical SQL, which is how the rewriter recorded them.
func (rep *Report) Annotate(root plan.Node, moduleID string) {
	injectedWhere := sqlSet(rep.InjectedWhere)
	injectedHaving := sqlSet(rep.InjectedHaving)

	annotatedProjection := false
	plan.Walk(root, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Filter:
			x.Prov = append(x.Prov, condProvenance(x.Cond, injectedWhere, moduleID)...)
		case *plan.Scan:
			x.Prov = append(x.Prov, condProvenance(x.Predicate, injectedWhere, moduleID)...)
		case *plan.Aggregate:
			x.Prov = append(x.Prov, condProvenance(x.Having, injectedHaving, moduleID)...)
			rep.annotateAggregation(x, moduleID)
			rep.annotateItems(x.Items, &x.Prov, moduleID)
			if !annotatedProjection {
				annotatedProjection = rep.annotateRemoved(&x.Prov, moduleID)
			}
		case *plan.Project:
			rep.annotateItems(x.Items, &x.Prov, moduleID)
			if !annotatedProjection {
				annotatedProjection = rep.annotateRemoved(&x.Prov, moduleID)
			}
		}
	})
}

// annotateRemoved documents projection control on the outermost projection.
func (rep *Report) annotateRemoved(prov *[]plan.Provenance, moduleID string) bool {
	if len(rep.RemovedAttributes) == 0 {
		return true
	}
	*prov = append(*prov, plan.Provenance{
		Origin:  "policy",
		Module:  moduleID,
		Rule:    "projection control (suppressed attributes)",
		Columns: append([]string(nil), rep.RemovedAttributes...),
	})
	return true
}

// annotateAggregation marks mandated-aggregation items on an Aggregate node.
func (rep *Report) annotateAggregation(agg *plan.Aggregate, moduleID string) {
	for attr, alias := range rep.EnforcedAggregations {
		for _, it := range agg.Items {
			if !strings.EqualFold(it.Alias, alias) {
				continue
			}
			f, ok := it.Expr.(*sqlparser.FuncCall)
			if !ok || !f.IsAggregate() {
				continue
			}
			agg.Prov = append(agg.Prov, plan.Provenance{
				Origin:  "policy",
				Module:  moduleID,
				Rule:    "mandated aggregation",
				Columns: []string{attr},
				Detail:  fmt.Sprintf("%s -> %s(%s) AS %s", attr, strings.ToUpper(f.Name), attr, alias),
			})
		}
	}
}

// annotateItems marks §3.3 compression rewrites on projection items.
func (rep *Report) annotateItems(items []sqlparser.SelectItem, prov *[]plan.Provenance, moduleID string) {
	for attr, grid := range rep.CompressedAttributes {
		for _, it := range items {
			if !strings.EqualFold(it.Alias, attr) {
				continue
			}
			if _, ok := it.Expr.(*sqlparser.BinaryExpr); !ok {
				continue
			}
			*prov = append(*prov, plan.Provenance{
				Origin:  "policy",
				Module:  moduleID,
				Rule:    "compression (grid snap)",
				Columns: []string{attr},
				Detail:  fmt.Sprintf("%s @ grid %g", attr, grid),
			})
		}
	}
}

// condProvenance returns one provenance entry per conjunct of cond that the
// policy injected.
func condProvenance(cond sqlparser.Expr, injected map[string]bool, moduleID string) []plan.Provenance {
	if cond == nil || len(injected) == 0 {
		return nil
	}
	var out []plan.Provenance
	for _, c := range sqlparser.Conjuncts(cond) {
		if !injected[strings.ToLower(c.SQL())] {
			continue
		}
		out = append(out, plan.Provenance{
			Origin:  "policy",
			Module:  moduleID,
			Rule:    "selection control (injected condition)",
			Columns: sqlparser.ColumnNames(c),
			Detail:  c.SQL(),
		})
	}
	return out
}

func sqlSet(conds []string) map[string]bool {
	out := make(map[string]bool, len(conds))
	for _, c := range conds {
		out[strings.ToLower(c)] = true
	}
	return out
}
