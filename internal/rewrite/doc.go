// Package rewrite implements the preprocessor of the PArADISE query
// processor (Grunert & Heuer, §3.1 and §4.2): it analyzes an incoming query
// against the affected user's privacy policy and rewrites it so that
//
//   - attributes the user does not reveal are removed from SELECT clauses
//     (projection control),
//   - the policy's atomic conditions are conjunctively merged into the
//     WHERE/HAVING clauses of the *innermost possible* part of the nested
//     query (selection control),
//   - attributes restricted to aggregated form are replaced by their
//     mandated aggregate with a new alias (e.g. AVG(z) AS zAVG) that is
//     propagated to the outer query parts, together with the mandated
//     GROUP BY and HAVING safeguards, and
//   - a differently-permissioned sensor can be substituted in FROM.
//
// The rewriter never weakens a query: it only removes projections and adds
// conjuncts, so the rewritten result is always a subset (tuple- and
// attribute-wise) of the original.
package rewrite
