package rewrite

import (
	"context"
	"math"
	"strings"
	"testing"

	"paradise/internal/engine"
	"paradise/internal/policy"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

func compressionModule(t *testing.T, grid float64) *policy.Module {
	t.Helper()
	return &policy.Module{ID: "Compressed", Attributes: []*policy.Attribute{
		{Name: "x", Allow: true, CompressionGrid: grid},
		{Name: "y", Allow: true},
		{Name: "z", Allow: true},
		{Name: "t", Allow: true},
	}}
}

func TestCompressionRewrite(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, rep := mustRewrite(t, rw, "SELECT x, y FROM d", compressionModule(t, 0.25))
	sql := out.SQL()
	if !strings.Contains(sql, "ROUND(x / 0.25) * 0.25 AS x") {
		t.Fatalf("compression expression missing: %s", sql)
	}
	if rep.CompressedAttributes["x"] != 0.25 {
		t.Fatalf("report = %v", rep.CompressedAttributes)
	}
	if !strings.Contains(rep.Summary(), "compressed") {
		t.Fatalf("summary lacks compression: %s", rep.Summary())
	}
}

func TestCompressionThroughStar(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, rep := mustRewrite(t, rw, "SELECT * FROM stream", &policy.Module{
		ID: "Compressed", Attributes: []*policy.Attribute{
			{Name: "x", Allow: true, CompressionGrid: 0.5},
			{Name: "y", Allow: true},
			{Name: "z", Allow: true},
			{Name: "t", Allow: true},
		}})
	sql := out.SQL()
	for _, it := range out.Items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			t.Fatalf("star must be expanded under compression: %s", sql)
		}
	}
	if !strings.Contains(sql, "ROUND(x / 0.5) * 0.5") {
		t.Fatalf("compression missing after star expansion: %s", sql)
	}
	_ = rep
}

func TestCompressionSkippedUnderAggregation(t *testing.T) {
	rw := New(testCatalog(), Options{})
	mod := compressionModule(t, 0.25)
	mod.Attributes[0].Aggregation = &policy.Aggregation{Type: "avg", GroupBy: []string{"y"}}
	out, rep := mustRewrite(t, rw, "SELECT x, y FROM d", mod)
	if len(rep.CompressedAttributes) != 0 {
		t.Fatalf("aggregated attribute must not be compressed too: %s", out.SQL())
	}
	if rep.EnforcedAggregations["x"] == "" {
		t.Fatalf("aggregation should apply instead: %s", out.SQL())
	}
}

func TestCompressionExecutesOnEngine(t *testing.T) {
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.SensitiveCol("user", schema.TypeString),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	vals := []float64{0.07, 0.13, 0.26, 0.38, 1.11}
	for i, v := range vals {
		if err := d.Append(schema.Row{
			schema.String("u"), schema.Float(v), schema.Float(0), schema.Float(1), schema.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rw := New(st.Catalog(), Options{})
	out, _ := mustRewrite(t, rw, "SELECT x FROM d", compressionModule(t, 0.25))
	res, err := engine.New(st).Select(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.25, 0.5, 1.0}
	for i, r := range res.Rows {
		if math.Abs(r[0].AsFloat()-want[i]) > 1e-9 {
			t.Fatalf("row %d: %v, want %v", i, r[0].AsFloat(), want[i])
		}
	}
}

func TestCompressionPolicyXMLRoundTrip(t *testing.T) {
	doc := `<module module_ID="m"><attributeList>
		<attribute name="x"><allow>true</allow><compression>0.25</compression></attribute>
	</attributeList></module>`
	p, err := policy.ParseBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Modules[0]
	a, _ := m.Attribute("x")
	if a.CompressionGrid != 0.25 {
		t.Fatalf("grid = %v", a.CompressionGrid)
	}
	data, err := policy.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := policy.ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := p2.Modules[0].Attribute("x")
	if a2.CompressionGrid != 0.25 {
		t.Fatal("compression lost in round trip")
	}
	// Negative grid is invalid.
	bad := `<module module_ID="m"><attributeList>
		<attribute name="x"><allow>true</allow><compression>-1</compression></attribute>
	</attributeList></module>`
	if _, err := policy.ParseBytes([]byte(bad)); err == nil {
		t.Fatal("negative compression should fail validation")
	}
}

func TestCompressionMergeStricter(t *testing.T) {
	a := &policy.Module{ID: "m", Attributes: []*policy.Attribute{
		{Name: "x", Allow: true, CompressionGrid: 0.25}}}
	b := &policy.Module{ID: "m", Attributes: []*policy.Attribute{
		{Name: "x", Allow: true, CompressionGrid: 1.0}}}
	out := policy.Merge(a, b)
	ax, _ := out.Attribute("x")
	if ax.CompressionGrid != 1.0 {
		t.Fatalf("coarser grid should win: %v", ax.CompressionGrid)
	}
}
