package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"paradise/internal/policy"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// deniedName decides whether a column name is denied at query scope. Base
// attributes (columns of the innermost FROM relations) follow the module's
// deny-by-default rule; names that are not base attributes are derived
// aliases computed from already-filtered data and are permitted unless the
// module explicitly denies them.
func deniedName(name string, baseCols map[string]bool, mod *policy.Module) bool {
	if isDerivedAlias(name, mod) {
		return false
	}
	if a, ok := mod.Attribute(name); ok {
		return !a.Allow
	}
	return baseCols[name] // unlisted base attribute: data-minimization default
}

// referencedColumns collects every column name the query mentions anywhere;
// a star at some level references that level's full input.
func referencedColumns(chain []level, avail []map[string]bool) map[string]bool {
	out := make(map[string]bool)
	add := func(e sqlparser.Expr) {
		for _, c := range sqlparser.ColumnRefs(e) {
			out[c.Name] = true
		}
	}
	for i, lv := range chain {
		q := lv.sel
		for _, it := range q.Items {
			if _, ok := it.Expr.(*sqlparser.Star); ok {
				for c := range avail[i] {
					out[c] = true
				}
				continue
			}
			add(it.Expr)
		}
		add(q.Where)
		for _, g := range q.GroupBy {
			add(g)
		}
		add(q.Having)
		for _, o := range q.OrderBy {
			add(o.Expr)
		}
	}
	return out
}

// enforceProjection removes denied attributes from every SELECT list.
// At the innermost level, SELECT * is expanded so denied base columns can be
// dropped individually (outer stars then only pass through what survived).
func (rw *Rewriter) enforceProjection(chain []level, avail []map[string]bool, mod *policy.Module, rep *Report) error {
	inner := chain[len(chain)-1]
	innerAvail := avail[len(chain)-1]

	// Expand the innermost star when it would reveal denied columns or
	// bypass a per-attribute compression mandate.
	needsExpansion := len(mod.DeniedOf(setToSorted(innerAvail))) > 0
	for _, a := range mod.Attributes {
		if a.Allow && a.CompressionGrid > 0 && innerAvail[a.Name] {
			needsExpansion = true
		}
	}
	if hasStarItem(inner.sel) && needsExpansion {
		var items []sqlparser.SelectItem
		for _, it := range inner.sel.Items {
			if _, ok := it.Expr.(*sqlparser.Star); !ok {
				items = append(items, it)
				continue
			}
			for _, name := range setToSorted(innerAvail) {
				items = append(items, sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Name: name}})
			}
		}
		inner.sel.Items = items
	}

	baseCols := avail[len(chain)-1]
	removed := map[string]bool{}
	for _, lv := range chain {
		var kept []sqlparser.SelectItem
		for _, it := range lv.sel.Items {
			if _, ok := it.Expr.(*sqlparser.Star); ok {
				kept = append(kept, it)
				continue
			}
			drop := false
			for _, c := range sqlparser.ColumnRefs(it.Expr) {
				if deniedName(c.Name, baseCols, mod) {
					drop = true
					if !removed[c.Name] {
						removed[c.Name] = true
						rep.RemovedAttributes = append(rep.RemovedAttributes, c.Name)
					}
				}
			}
			if !drop {
				kept = append(kept, it)
			}
		}
		if len(kept) == 0 {
			return &Denial{
				Module:  mod.ID,
				Rule:    "every projected attribute is denied",
				Columns: setToSorted(removed),
				Query:   lv.sel.SQL(),
			}
		}
		lv.sel.Items = kept
	}
	return nil
}

// isDerivedAlias reports whether the name is an alias a mandated aggregation
// introduces (e.g. zavg for z); such names are always permitted because they
// denote the policy-compliant aggregate.
func isDerivedAlias(name string, mod *policy.Module) bool {
	for _, a := range mod.Attributes {
		if a.Aggregation != nil && strings.EqualFold(a.AliasFor(), name) {
			return true
		}
	}
	return false
}

// rejectDeniedUsage refuses queries whose WHERE, GROUP BY, HAVING or ORDER
// BY reference denied attributes: dropping such clauses would widen the
// result, so rejection is the only safe answer.
func (rw *Rewriter) rejectDeniedUsage(chain []level, avail []map[string]bool, mod *policy.Module) error {
	baseCols := avail[len(chain)-1]
	check := func(e sqlparser.Expr, clause string, q *sqlparser.Select) error {
		for _, c := range sqlparser.ColumnRefs(e) {
			if deniedName(c.Name, baseCols, mod) {
				return &Denial{
					Module:  mod.ID,
					Rule:    "denied attribute used in " + clause,
					Columns: []string{c.Name},
					Query:   q.SQL(),
				}
			}
		}
		return nil
	}
	for _, lv := range chain {
		q := lv.sel
		if err := check(q.Where, "WHERE", q); err != nil {
			return err
		}
		for _, g := range q.GroupBy {
			if err := check(g, "GROUP BY", q); err != nil {
				return err
			}
		}
		if err := check(q.Having, "HAVING", q); err != nil {
			return err
		}
		for _, o := range q.OrderBy {
			if err := check(o.Expr, "ORDER BY", q); err != nil {
				return err
			}
		}
		// Window specs inside surviving items.
		for _, it := range q.Items {
			for _, w := range sqlparser.WindowCalls(it.Expr) {
				for _, pe := range w.Over.PartitionBy {
					if err := check(pe, "PARTITION BY", q); err != nil {
						return err
					}
				}
				for _, o := range w.Over.OrderBy {
					if err := check(o.Expr, "window ORDER BY", q); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// injectConditions merges each policy condition conjunctively into the
// WHERE (or HAVING, when the condition aggregates) of the innermost level
// at which all referenced columns are available — "the innermost possible
// part of the nested SQL query" (§4.2). A condition only applies when the
// query actually touches the attribute it protects; a query that never
// reads z need not be narrowed by z's conditions.
func (rw *Rewriter) injectConditions(chain []level, avail []map[string]bool, mod *policy.Module, rep *Report) {
	referenced := referencedColumns(chain, avail)
	for _, attr := range mod.Attributes {
		if !attr.Allow || !referenced[attr.Name] {
			continue
		}
		for _, cond := range attr.Conditions {
			rw.placeCondition(chain, avail, cond, rep)
		}
	}
}

func (rw *Rewriter) placeCondition(chain []level, avail []map[string]bool, cond sqlparser.Expr, rep *Report) {
	needed := sqlparser.ColumnNames(cond)
	isAgg := sqlparser.ContainsAggregate(cond)

	// Walk from the innermost level outward to find the deepest placement.
	for i := len(chain) - 1; i >= 0; i-- {
		ok := true
		for _, n := range needed {
			if !avail[i][n] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		q := chain[i].sel
		if isAgg {
			if !hasConjunct(q.Having, cond) {
				q.Having = sqlparser.And(q.Having, sqlparser.CloneExpr(cond))
				rep.InjectedHaving = append(rep.InjectedHaving, cond.SQL())
			}
			return
		}
		if !hasConjunct(q.Where, cond) {
			q.Where = sqlparser.And(q.Where, sqlparser.CloneExpr(cond))
			rep.InjectedWhere = append(rep.InjectedWhere, cond.SQL())
		}
		return
	}
	// No level can evaluate the condition (its columns are projected away
	// everywhere): nothing to inject — the attribute never leaves anyway.
}

// hasConjunct reports whether cond already appears as a top-level conjunct.
func hasConjunct(e, cond sqlparser.Expr) bool {
	want := strings.ToLower(cond.SQL())
	for _, c := range sqlparser.Conjuncts(e) {
		if strings.ToLower(c.SQL()) == want {
			return true
		}
	}
	return false
}

// enforceAggregations applies mandated aggregations: in the innermost level
// projecting the raw attribute, the item is replaced by the aggregate with
// its derived alias; the mandated GROUP BY and HAVING are installed; and
// references in all enclosing levels are renamed to the alias (the paper's
// PARTITION BY z -> PARTITION BY zAVG).
func (rw *Rewriter) enforceAggregations(chain []level, avail []map[string]bool, mod *policy.Module, rep *Report) error {
	for _, attr := range mod.Attributes {
		if attr.Aggregation == nil || !attr.Allow {
			continue
		}
		if err := rw.enforceOneAggregation(chain, avail, mod, attr, rep); err != nil {
			return err
		}
	}
	return nil
}

func (rw *Rewriter) enforceOneAggregation(chain []level, avail []map[string]bool, mod *policy.Module, attr *policy.Attribute, rep *Report) error {
	ag := attr.Aggregation
	alias := strings.ToLower(attr.AliasFor())

	// Find the innermost level that projects the raw attribute.
	target := -1
	for i := len(chain) - 1; i >= 0; i-- {
		if projectsRaw(chain[i].sel, attr.Name) {
			target = i
			break
		}
	}
	if target < 0 {
		// The attribute is never projected raw; if it is also never
		// aggregated compatibly, there is nothing to enforce.
		return nil
	}
	q := chain[target].sel

	// Refuse to merge into an existing, different grouping.
	if len(q.GroupBy) > 0 && !sameGroupBy(q.GroupBy, ag.GroupBy) {
		return fmt.Errorf("%w: mandated aggregation of %q conflicts with existing GROUP BY in %q",
			ErrUnsupported, attr.Name, q.SQL())
	}

	// Replace the raw item by the mandated aggregate.
	changed := false
	for i, it := range q.Items {
		c, ok := it.Expr.(*sqlparser.ColumnRef)
		if !ok || !strings.EqualFold(c.Name, attr.Name) {
			continue
		}
		q.Items[i] = sqlparser.SelectItem{
			Expr: &sqlparser.FuncCall{
				Name: ag.Type,
				Args: []sqlparser.Expr{&sqlparser.ColumnRef{Name: attr.Name}},
			},
			Alias: alias,
		}
		changed = true
	}
	if !changed {
		return nil
	}
	rep.EnforcedAggregations[attr.Name] = alias

	// Install the mandated GROUP BY (idempotently).
	if len(q.GroupBy) == 0 {
		for _, g := range ag.GroupBy {
			q.GroupBy = append(q.GroupBy, &sqlparser.ColumnRef{Name: g})
		}
	}

	// Install the mandated HAVING.
	if ag.Having != nil && !hasConjunct(q.Having, ag.Having) {
		q.Having = sqlparser.And(q.Having, sqlparser.CloneExpr(ag.Having))
		rep.InjectedHaving = append(rep.InjectedHaving, ag.Having.SQL())
	}

	// Propagate the alias to every enclosing level until one of them
	// re-establishes the raw name.
	for i := target - 1; i >= 0; i-- {
		renameColumn(chain[i].sel, attr.Name, alias)
		if definesName(chain[i].sel, attr.Name) {
			break
		}
	}
	return nil
}

// projectsRaw reports whether the SELECT projects the bare attribute
// (directly or via *).
func projectsRaw(q *sqlparser.Select, name string) bool {
	for _, it := range q.Items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			return true
		}
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && strings.EqualFold(c.Name, name) {
			return true
		}
	}
	return false
}

// sameGroupBy compares an existing GROUP BY list with the mandated one.
func sameGroupBy(have []sqlparser.Expr, want []string) bool {
	if len(have) != len(want) {
		return false
	}
	found := map[string]bool{}
	for _, g := range have {
		c, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			return false
		}
		found[strings.ToLower(c.Name)] = true
	}
	for _, w := range want {
		if !found[strings.ToLower(w)] {
			return false
		}
	}
	return true
}

// renameColumn rewrites references to old into new in every clause of one
// SELECT (not descending into its FROM subquery, which is a deeper level).
func renameColumn(q *sqlparser.Select, oldName, newName string) {
	ren := func(e sqlparser.Expr) sqlparser.Expr {
		return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && strings.EqualFold(c.Name, oldName) {
				return &sqlparser.ColumnRef{Table: c.Table, Name: newName}
			}
			return x
		})
	}
	for i := range q.Items {
		q.Items[i].Expr = ren(q.Items[i].Expr)
	}
	q.Where = ren(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = ren(q.GroupBy[i])
	}
	q.Having = ren(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = ren(q.OrderBy[i].Expr)
	}
}

// definesName reports whether the SELECT's output re-establishes the name
// (an item aliased to it, or a bare column of that name).
func definesName(q *sqlparser.Select, name string) bool {
	for _, it := range q.Items {
		if strings.EqualFold(it.Alias, name) {
			return true
		}
		if it.Alias == "" {
			if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && strings.EqualFold(c.Name, name) {
				return true
			}
		}
	}
	return false
}

// enforceCompression rewrites raw projections of grid-restricted attributes
// into ROUND(attr / g) * g, keeping the attribute name via an alias so
// outer references keep resolving. Attributes under a mandated aggregation
// are already coarsened by it and are skipped.
func (rw *Rewriter) enforceCompression(chain []level, mod *policy.Module, rep *Report) {
	for _, attr := range mod.Attributes {
		if !attr.Allow || attr.CompressionGrid <= 0 || attr.Aggregation != nil {
			continue
		}
		// The innermost level projecting the raw attribute applies the
		// compression; outer levels then see only compressed values.
		for i := len(chain) - 1; i >= 0; i-- {
			q := chain[i].sel
			changed := false
			for j, it := range q.Items {
				c, ok := it.Expr.(*sqlparser.ColumnRef)
				if !ok || !strings.EqualFold(c.Name, attr.Name) {
					continue
				}
				q.Items[j] = sqlparser.SelectItem{
					Expr:  compressExpr(attr.Name, attr.CompressionGrid),
					Alias: attr.Name,
				}
				changed = true
			}
			if changed {
				rep.CompressedAttributes[attr.Name] = attr.CompressionGrid
				break
			}
		}
	}
}

// compressExpr builds ROUND(name / g) * g.
func compressExpr(name string, grid float64) sqlparser.Expr {
	gridLit := func() sqlparser.Expr {
		return &sqlparser.Literal{Value: schema.Float(grid)}
	}
	return &sqlparser.BinaryExpr{
		Op: sqlparser.OpMul,
		L: &sqlparser.FuncCall{
			Name: "round",
			Args: []sqlparser.Expr{&sqlparser.BinaryExpr{
				Op: sqlparser.OpDiv,
				L:  &sqlparser.ColumnRef{Name: name},
				R:  gridLit(),
			}},
		},
		R: gridLit(),
	}
}

func hasStarItem(q *sqlparser.Select) bool {
	for _, it := range q.Items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			return true
		}
	}
	return false
}

func setToSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic order for reproducible rewrites.
	sort.Strings(out)
	return out
}
