package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"paradise/internal/policy"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrDenied is returned when the policy forbids answering the query at all
// (e.g. a denied attribute is load-bearing in WHERE or GROUP BY).
var ErrDenied = errors.New("rewrite: query denied by privacy policy")

// Denial is the structured form of an ErrDenied: which rule of the policy
// module the query violates and which attributes trip it. Every denial the
// rewriter emits is a *Denial, so callers can errors.As for the details;
// errors.Is(err, ErrDenied) keeps working.
type Denial struct {
	// Module is the ID of the policy module the query was checked against.
	Module string
	// Rule describes the violated rule ("denied attribute used in WHERE",
	// "every projected attribute is denied").
	Rule string
	// Columns are the offending attribute names, deduplicated.
	Columns []string
	// Query is the (sub)query the violation was found in.
	Query string
}

func (d *Denial) Error() string {
	msg := fmt.Sprintf("%v: %s", ErrDenied, d.Rule)
	if len(d.Columns) > 0 {
		msg += fmt.Sprintf(" (attributes %s)", strings.Join(d.Columns, ", "))
	}
	if d.Query != "" {
		msg += fmt.Sprintf(" in %q", d.Query)
	}
	return msg
}

// Unwrap ties the structured denial into the ErrDenied chain.
func (d *Denial) Unwrap() error { return ErrDenied }

// ErrUnsupported is returned for query shapes the rewriter cannot transform
// safely (it refuses rather than guessing).
var ErrUnsupported = errors.New("rewrite: unsupported query shape")

// Options tune the rewriter.
type Options struct {
	// TableSubstitutions maps base-table names to less revealing
	// replacements ("if one sensor releases too much information, another
	// sensor is queried by changing the relation in the FROM clause").
	// The substitute must provide every column the query still needs.
	TableSubstitutions map[string]string
}

// Report documents every transformation applied, for the privacy audit
// trail the processor returns with each query.
type Report struct {
	// RemovedAttributes are attributes dropped from SELECT clauses.
	RemovedAttributes []string
	// InjectedWhere lists the policy conditions merged into WHERE clauses.
	InjectedWhere []string
	// InjectedHaving lists conditions merged into HAVING clauses.
	InjectedHaving []string
	// EnforcedAggregations maps attribute -> alias for mandated aggregates.
	EnforcedAggregations map[string]string
	// CompressedAttributes maps attribute -> grid width for §3.3
	// compression (values released only snapped to the grid).
	CompressedAttributes map[string]float64
	// SubstitutedTables maps original -> replacement FROM relations.
	SubstitutedTables map[string]string
}

func newReport() *Report {
	return &Report{
		EnforcedAggregations: make(map[string]string),
		CompressedAttributes: make(map[string]float64),
		SubstitutedTables:    make(map[string]string),
	}
}

// Changed reports whether any transformation was applied.
func (r *Report) Changed() bool {
	return len(r.RemovedAttributes) > 0 || len(r.InjectedWhere) > 0 ||
		len(r.InjectedHaving) > 0 || len(r.EnforcedAggregations) > 0 ||
		len(r.CompressedAttributes) > 0 || len(r.SubstitutedTables) > 0
}

// Summary renders a human-readable digest of the transformations.
func (r *Report) Summary() string {
	var parts []string
	if len(r.RemovedAttributes) > 0 {
		parts = append(parts, "removed: "+strings.Join(r.RemovedAttributes, ", "))
	}
	if len(r.InjectedWhere) > 0 {
		parts = append(parts, "where+: "+strings.Join(r.InjectedWhere, " AND "))
	}
	if len(r.InjectedHaving) > 0 {
		parts = append(parts, "having+: "+strings.Join(r.InjectedHaving, " AND "))
	}
	if len(r.EnforcedAggregations) > 0 {
		var ag []string
		for attr, alias := range r.EnforcedAggregations {
			ag = append(ag, attr+"->"+alias)
		}
		sort.Strings(ag)
		parts = append(parts, "aggregated: "+strings.Join(ag, ", "))
	}
	if len(r.CompressedAttributes) > 0 {
		var cs []string
		for attr, grid := range r.CompressedAttributes {
			cs = append(cs, fmt.Sprintf("%s@%g", attr, grid))
		}
		sort.Strings(cs)
		parts = append(parts, "compressed: "+strings.Join(cs, ", "))
	}
	if len(r.SubstitutedTables) > 0 {
		var su []string
		for from, to := range r.SubstitutedTables {
			su = append(su, from+"->"+to)
		}
		sort.Strings(su)
		parts = append(parts, "substituted: "+strings.Join(su, ", "))
	}
	if len(parts) == 0 {
		return "no transformation required"
	}
	return strings.Join(parts, "; ")
}

// Rewriter transforms queries under privacy policies.
type Rewriter struct {
	cat  *schema.Catalog
	opts Options
}

// New builds a rewriter over the given catalog (needed to expand SELECT *
// and to place conditions at the innermost possible level).
func New(cat *schema.Catalog, opts Options) *Rewriter {
	return &Rewriter{cat: cat, opts: opts}
}

// Rewrite returns a policy-compliant version of the query plus the report
// of applied transformations. The input statement is not modified.
func (rw *Rewriter) Rewrite(sel *sqlparser.Select, mod *policy.Module) (*sqlparser.Select, *Report, error) {
	out := sqlparser.CloneSelect(sel)
	rep := newReport()

	// 1. Substitute over-revealing sensors in FROM clauses.
	if len(rw.opts.TableSubstitutions) > 0 {
		sqlparser.WalkSelects(out, func(q *sqlparser.Select) {
			q.From = rw.substitute(q.From, rep)
		})
	}

	// 2. Collect the SELECT chain from outermost to innermost and the
	// available input columns at each level.
	chain, avail, err := rw.analyze(out)
	if err != nil {
		return nil, nil, err
	}

	// 3. Projection control: expand stars at the innermost level where
	// denied attributes could leak, then drop denied items everywhere.
	if err := rw.enforceProjection(chain, avail, mod, rep); err != nil {
		return nil, nil, err
	}

	// 4. Reject queries that *use* denied attributes structurally.
	if err := rw.rejectDeniedUsage(chain, avail, mod); err != nil {
		return nil, nil, err
	}

	// 5. Inject atomic conditions at the innermost possible level.
	rw.injectConditions(chain, avail, mod, rep)

	// 6. Enforce mandated aggregations with alias propagation.
	if err := rw.enforceAggregations(chain, avail, mod, rep); err != nil {
		return nil, nil, err
	}

	// 7. A mandated aggregation can introduce new attribute references
	// (its GROUP BY columns); their conditions now apply too. Injection is
	// idempotent, so re-running it only adds what became necessary.
	rw.injectConditions(chain, avail, mod, rep)

	// 8. Apply §3.3 compression: attributes restricted to grid resolution.
	rw.enforceCompression(chain, mod, rep)

	return out, rep, nil
}

// substitute applies table substitutions to one FROM tree.
func (rw *Rewriter) substitute(t sqlparser.TableRef, rep *Report) sqlparser.TableRef {
	switch x := t.(type) {
	case *sqlparser.TableName:
		if repl, ok := rw.opts.TableSubstitutions[x.Name]; ok && repl != x.Name {
			rep.SubstitutedTables[x.Name] = repl
			alias := x.Alias
			if alias == "" {
				// Keep the old name visible as alias so outer references
				// still resolve.
				alias = x.Name
			}
			return &sqlparser.TableName{Name: repl, Alias: alias}
		}
		return x
	case *sqlparser.Join:
		x.Left = rw.substitute(x.Left, rep)
		x.Right = rw.substitute(x.Right, rep)
		return x
	default:
		return t
	}
}

// level pairs a SELECT with its depth; chain[0] is the outermost query.
type level struct {
	sel   *sqlparser.Select
	depth int
}

// analyze walks the FROM chain of derived tables. Levels are the nested
// SELECTs along the spine (outermost first); avail[i] is the set of input
// columns visible at chain[i].
func (rw *Rewriter) analyze(out *sqlparser.Select) ([]level, []map[string]bool, error) {
	var chain []level
	cur := out
	depth := 0
	for {
		chain = append(chain, level{sel: cur, depth: depth})
		sq, ok := cur.From.(*sqlparser.Subquery)
		if !ok {
			break
		}
		cur = sq.Select
		depth++
	}

	avail := make([]map[string]bool, len(chain))
	// Compute from innermost upward.
	for i := len(chain) - 1; i >= 0; i-- {
		q := chain[i].sel
		if i == len(chain)-1 {
			cols, err := rw.baseColumns(q.From)
			if err != nil {
				return nil, nil, err
			}
			avail[i] = cols
		} else {
			// Input of level i is the output of level i+1.
			avail[i] = outputColumns(chain[i+1].sel, avail[i+1])
		}
	}
	return chain, avail, nil
}

// baseColumns resolves the columns provided by a base FROM tree (tables and
// joins; derived tables do not occur here because analyze stopped at the
// innermost spine SELECT).
func (rw *Rewriter) baseColumns(t sqlparser.TableRef) (map[string]bool, error) {
	out := make(map[string]bool)
	var walk func(t sqlparser.TableRef) error
	walk = func(t sqlparser.TableRef) error {
		switch x := t.(type) {
		case nil:
			return nil
		case *sqlparser.TableName:
			rel, ok := rw.cat.Lookup(x.Name)
			if !ok {
				return fmt.Errorf("%w: unknown relation %q", ErrUnsupported, x.Name)
			}
			for _, c := range rel.Columns {
				out[c.Name] = true
			}
			return nil
		case *sqlparser.Join:
			if err := walk(x.Left); err != nil {
				return err
			}
			return walk(x.Right)
		case *sqlparser.Subquery:
			// Off-spine derived table (inside a join): use its output.
			inner, innerAvail, err := rw.analyze(x.Select)
			if err != nil {
				return err
			}
			for c := range outputColumns(inner[0].sel, innerAvail[0]) {
				out[c] = true
			}
			return nil
		default:
			return fmt.Errorf("%w: FROM item %T", ErrUnsupported, t)
		}
	}
	if err := walk(t); err != nil {
		return nil, err
	}
	return out, nil
}

// outputColumns derives the output column names of a SELECT given its input
// columns (for star expansion).
func outputColumns(q *sqlparser.Select, input map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for i, it := range q.Items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			for c := range input {
				out[c] = true
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				name = c.Name
			} else if f, ok := it.Expr.(*sqlparser.FuncCall); ok {
				name = f.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out[name] = true
	}
	return out
}
