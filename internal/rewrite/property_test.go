package rewrite

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paradise/internal/engine"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// randomUserQuery generates queries an assistive system might send: random
// projections and filters over d(user, x, y, z, t), sometimes nested,
// sometimes touching the denied user column.
func randomUserQuery(rng *rand.Rand) string {
	cols := []string{"user", "x", "y", "z", "t"}
	pick := func() string { return cols[rng.Intn(len(cols))] }

	var proj []string
	n := 1 + rng.Intn(3)
	perm := rng.Perm(len(cols))
	for i := 0; i < n; i++ {
		proj = append(proj, cols[perm[i]])
	}

	var conj []string
	for i := 0; i < rng.Intn(3); i++ {
		c := pick()
		if c == "user" {
			conj = append(conj, "user = 'alice'")
			continue
		}
		op := []string{"<", ">", "="}[rng.Intn(3)]
		conj = append(conj, fmt.Sprintf("%s %s %.1f", c, op, rng.Float64()*3))
	}

	inner := "SELECT " + strings.Join(proj, ", ") + " FROM d"
	if len(conj) > 0 {
		inner += " WHERE " + strings.Join(conj, " AND ")
	}
	if rng.Intn(3) == 0 {
		return "SELECT " + proj[rng.Intn(len(proj))] + " FROM (" + inner + ")"
	}
	return inner
}

// TestPropertyRewriteSoundness: whenever the rewriter accepts a random
// query, the output must (1) re-parse, (2) contain no denied attribute,
// (3) contain every applicable policy condition as a conjunct somewhere,
// and (4) the result rows must be a subset of the original query's rows
// when no aggregation was mandated (the rewriter only narrows).
func TestPropertyRewriteSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cat := testCatalog()
	rw := New(cat, Options{})
	mod := actionFilter(t)
	st := soundnessStore(t, rng)
	eng := engine.New(st)

	accepted, denied := 0, 0
	for trial := 0; trial < 400; trial++ {
		q := randomUserQuery(rng)
		sel, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("generator bug: %q: %v", q, err)
		}
		out, rep, err := rw.Rewrite(sel, mod)
		if err != nil {
			if errors.Is(err, ErrDenied) || errors.Is(err, ErrUnsupported) {
				denied++
				continue
			}
			t.Fatalf("unexpected rewrite error for %q: %v", q, err)
		}
		accepted++

		// (1) Re-parses.
		printed := out.SQL()
		if _, err := sqlparser.Parse(printed); err != nil {
			t.Fatalf("rewritten SQL invalid: %q -> %q: %v", q, printed, err)
		}

		// (2) No denied attribute anywhere.
		if strings.Contains(strings.ToLower(printed), "user") {
			t.Fatalf("denied attribute leaked: %q -> %q", q, printed)
		}

		// (3) Policy conditions present when their attribute is used.
		lower := strings.ToLower(printed)
		if usesRaw(lower, "x") && !strings.Contains(lower, "x > y") {
			t.Fatalf("x > y missing: %q -> %q", q, printed)
		}
		if usesRaw(lower, "z") && !strings.Contains(lower, "z < 2") {
			t.Fatalf("z < 2 missing: %q -> %q", q, printed)
		}

		// (4) Narrowing: without mandated aggregation, the rewritten rows
		// are a sub-multiset of the original projected accordingly.
		if len(rep.EnforcedAggregations) == 0 {
			origRes, err1 := eng.Select(context.Background(), sel)
			newRes, err2 := eng.Select(context.Background(), out)
			if err1 == nil && err2 == nil {
				if len(newRes.Rows) > len(origRes.Rows) {
					t.Fatalf("rewrite widened the result: %q (%d -> %d rows)",
						q, len(origRes.Rows), len(newRes.Rows))
				}
			}
		}
	}
	if accepted == 0 || denied == 0 {
		t.Fatalf("generator should exercise both paths: accepted=%d denied=%d", accepted, denied)
	}
}

// usesRaw reports whether the printed SQL mentions the column at all
// (word-boundary-ish check good enough for single-letter columns).
func usesRaw(lowerSQL, col string) bool {
	for i := 0; i+len(col) <= len(lowerSQL); i++ {
		if lowerSQL[i:i+len(col)] != col {
			continue
		}
		before := byte(' ')
		if i > 0 {
			before = lowerSQL[i-1]
		}
		after := byte(' ')
		if i+len(col) < len(lowerSQL) {
			after = lowerSQL[i+len(col)]
		}
		if !isWordByte(before) && !isWordByte(after) {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= '0' && b <= '9')
}

func soundnessStore(t *testing.T, rng *rand.Rand) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.SensitiveCol("user", schema.TypeString),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	users := []string{"alice", "bob"}
	rows := make(schema.Rows, 300)
	for i := range rows {
		rows[i] = schema.Row{
			schema.String(users[rng.Intn(2)]),
			schema.Float(float64(rng.Intn(30)) / 10),
			schema.Float(float64(rng.Intn(30)) / 10),
			schema.Float(float64(rng.Intn(30)) / 10),
			schema.Int(int64(i)),
		}
	}
	if err := d.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return st
}
