package rewrite

import (
	"errors"
	"strings"
	"testing"

	"paradise/internal/plan"
)

// TestRewritePlanProvenance: the rewriter's output plan carries policy
// provenance on exactly the operators the policy introduced — injected
// conditions on the Filter, the mandated aggregation on the Aggregate, the
// injected HAVING on the Aggregate — so EXPLAIN can attribute every
// privacy transformation to its rule and columns.
func TestRewritePlanProvenance(t *testing.T) {
	rw := New(testCatalog(), Options{})
	root, rep, err := rw.RewritePlan(mustParse(t, "SELECT x, y, z, t FROM d WHERE t > 5"), actionFilter(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed() {
		t.Fatal("Figure 4 policy should transform the query")
	}

	var filterProv, aggProv []plan.Provenance
	plan.Walk(root, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Filter:
			filterProv = append(filterProv, x.Prov...)
		case *plan.Scan:
			filterProv = append(filterProv, x.Prov...)
		case *plan.Aggregate:
			aggProv = append(aggProv, x.Prov...)
		}
	})

	wantConds := map[string]bool{"x > y": false, "z < 2": false}
	for _, p := range filterProv {
		if p.Origin != "policy" || p.Module != "ActionFilter" {
			t.Fatalf("bad provenance origin: %+v", p)
		}
		if _, ok := wantConds[p.Detail]; ok {
			wantConds[p.Detail] = true
		}
	}
	for cond, seen := range wantConds {
		if !seen {
			t.Errorf("injected condition %q has no provenance on the plan", cond)
		}
	}

	var sawAggregation, sawHaving bool
	for _, p := range aggProv {
		if p.Rule == "mandated aggregation" && len(p.Columns) == 1 && p.Columns[0] == "z" {
			sawAggregation = true
		}
		if strings.Contains(p.Detail, "SUM(z) > 100") {
			sawHaving = true
		}
	}
	if !sawAggregation {
		t.Errorf("mandated aggregation of z not annotated: %+v", aggProv)
	}
	if !sawHaving {
		t.Errorf("injected HAVING not annotated: %+v", aggProv)
	}

	// Provenance must survive optimization (pushdown moves the conjuncts
	// into the scan, annotations travel with them).
	root = plan.Optimize(root, plan.Options{})
	out := plan.String(root)
	if !strings.Contains(out, "policy:ActionFilter") {
		t.Fatalf("optimized plan lost provenance:\n%s", out)
	}
}

// TestRewritePlanDenialUnchanged: RewritePlan refuses exactly like Rewrite,
// with the structured Denial carrying rule + columns.
func TestRewritePlanDenialUnchanged(t *testing.T) {
	rw := New(testCatalog(), Options{})
	_, _, err := rw.RewritePlan(mustParse(t, "SELECT user FROM d"), actionFilter(t))
	var d *Denial
	if !errors.As(err, &d) {
		t.Fatalf("want *Denial, got %v", err)
	}
	if d.Module != "ActionFilter" || len(d.Columns) == 0 {
		t.Fatalf("denial lacks rule context: %+v", d)
	}
}
