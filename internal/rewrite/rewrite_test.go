package rewrite

import (
	"errors"
	"strings"
	"testing"

	"paradise/internal/policy"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

func testCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	cat.Register(schema.NewRelation("d",
		schema.SensitiveCol("user", schema.TypeString),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	cat.Register(schema.NewRelation("stream",
		schema.SensitiveCol("tag_id", schema.TypeInt),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	cat.Register(schema.NewRelation("thermometer",
		schema.Col("sensor_id", schema.TypeInt),
		schema.Col("t", schema.TypeInt),
		schema.Col("celsius", schema.TypeFloat),
	))
	return cat
}

func actionFilter(t *testing.T) *policy.Module {
	t.Helper()
	m, ok := policy.Figure4().ModuleByID("ActionFilter")
	if !ok {
		t.Fatal("Figure4 policy lacks ActionFilter")
	}
	return m
}

func mustParse(t *testing.T, q string) *sqlparser.Select {
	t.Helper()
	s, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return s
}

func mustRewrite(t *testing.T, rw *Rewriter, q string, m *policy.Module) (*sqlparser.Select, *Report) {
	t.Helper()
	out, rep, err := rw.Rewrite(mustParse(t, q), m)
	if err != nil {
		t.Fatalf("rewrite %q: %v", q, err)
	}
	return out, rep
}

// TestPaperRunningExample checks the exact §4.2 transformation: the query
//
//	SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
//	FROM (SELECT x, y, z, t FROM d)
//
// under the Figure 4 policy becomes
//
//	SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t)
//	FROM (SELECT x, y, AVG(z) AS zAVG, t FROM d
//	      WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)
func TestPaperRunningExample(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, rep := mustRewrite(t, rw,
		"SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (SELECT x, y, z, t FROM d)",
		actionFilter(t))

	inner := sqlparser.InnermostSelect(out)

	// Inner WHERE carries both policy conditions conjunctively.
	wantConj := map[string]bool{"x > y": true, "z < 2": true}
	conj := sqlparser.Conjuncts(inner.Where)
	if len(conj) != 2 {
		t.Fatalf("inner WHERE = %v, want 2 conjuncts", exprSQLs(conj))
	}
	for _, c := range conj {
		if !wantConj[c.SQL()] {
			t.Errorf("unexpected conjunct %q", c.SQL())
		}
	}

	// Mandated aggregation: AVG(z) AS zavg.
	foundAgg := false
	for _, it := range inner.Items {
		f, ok := it.Expr.(*sqlparser.FuncCall)
		if ok && f.Name == "avg" && strings.EqualFold(it.Alias, "zavg") {
			foundAgg = true
		}
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && c.Name == "z" {
			t.Error("raw z still projected")
		}
	}
	if !foundAgg {
		t.Fatalf("AVG(z) AS zavg missing from inner select: %s", inner.SQL())
	}

	// GROUP BY x, y.
	if len(inner.GroupBy) != 2 {
		t.Fatalf("GROUP BY = %v", exprSQLs(inner.GroupBy))
	}

	// HAVING SUM(z) > 100.
	if inner.Having == nil || inner.Having.SQL() != "SUM(z) > 100" {
		t.Fatalf("HAVING = %v", inner.Having)
	}

	// Alias propagated into the outer window spec: PARTITION BY zavg.
	f := out.Items[0].Expr.(*sqlparser.FuncCall)
	pb := f.Over.PartitionBy[0].(*sqlparser.ColumnRef)
	if !strings.EqualFold(pb.Name, "zavg") {
		t.Fatalf("PARTITION BY = %q, want zavg", pb.Name)
	}

	// Report mentions everything.
	if len(rep.InjectedWhere) != 2 || len(rep.InjectedHaving) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.EnforcedAggregations["z"] != "zavg" {
		t.Fatalf("aggregations = %v", rep.EnforcedAggregations)
	}

	// The rewritten SQL must re-parse.
	if _, err := sqlparser.Parse(out.SQL()); err != nil {
		t.Fatalf("rewritten SQL does not reparse: %s: %v", out.SQL(), err)
	}
}

func TestProjectionRemoval(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, rep := mustRewrite(t, rw, "SELECT user, x, y FROM d", actionFilter(t))
	for _, it := range out.Items {
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && c.Name == "user" {
			t.Fatal("denied attribute user still projected")
		}
	}
	if len(rep.RemovedAttributes) != 1 || rep.RemovedAttributes[0] != "user" {
		t.Fatalf("removed = %v", rep.RemovedAttributes)
	}
	if len(out.Items) != 2 {
		t.Fatalf("items = %d", len(out.Items))
	}
}

func TestStarExpansionDropsDenied(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, rep := mustRewrite(t, rw, "SELECT * FROM d", actionFilter(t))
	if hasStarItem(out) {
		t.Fatalf("star should be expanded: %s", out.SQL())
	}
	names := map[string]bool{}
	for _, it := range out.Items {
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			names[c.Name] = true
		}
	}
	if names["user"] {
		t.Fatal("denied column user leaked through star")
	}
	for _, want := range []string{"x", "y", "t"} {
		if !names[want] {
			t.Errorf("column %s missing after expansion", want)
		}
	}
	if len(rep.RemovedAttributes) == 0 {
		t.Error("report should record the removal")
	}
	_ = rep
}

func TestAllDeniedRejected(t *testing.T) {
	rw := New(testCatalog(), Options{})
	_, _, err := rw.Rewrite(mustParse(t, "SELECT user FROM d"), actionFilter(t))
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
}

func TestDeniedInWhereRejected(t *testing.T) {
	rw := New(testCatalog(), Options{})
	_, _, err := rw.Rewrite(mustParse(t, "SELECT x FROM d WHERE user = 'alice'"), actionFilter(t))
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	_, _, err = rw.Rewrite(mustParse(t, "SELECT x FROM d GROUP BY user"), actionFilter(t))
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("GROUP BY user should be denied, got %v", err)
	}
	_, _, err = rw.Rewrite(mustParse(t, "SELECT x FROM d ORDER BY user"), actionFilter(t))
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("ORDER BY user should be denied, got %v", err)
	}
}

func TestConditionInjectionIdempotent(t *testing.T) {
	rw := New(testCatalog(), Options{})
	// Query already contains x > y; it must not be duplicated.
	out, _ := mustRewrite(t, rw, "SELECT x, y FROM d WHERE x > y", actionFilter(t))
	conj := sqlparser.Conjuncts(out.Where)
	count := 0
	for _, c := range conj {
		if c.SQL() == "x > y" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("x > y appears %d times: %s", count, out.SQL())
	}
}

func TestConditionPlacementInnermost(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, _ := mustRewrite(t, rw,
		"SELECT s FROM (SELECT x + y AS s, x, y FROM (SELECT x, y FROM d))",
		actionFilter(t))
	innermost := sqlparser.InnermostSelect(out)
	if innermost.Where == nil || !strings.Contains(innermost.Where.SQL(), "x > y") {
		t.Fatalf("x > y should land innermost, got: %s", out.SQL())
	}
	// The outer levels must not carry it.
	if out.Where != nil {
		t.Fatalf("outer WHERE should stay empty: %s", out.SQL())
	}
}

func TestConditionSkippedWhenColumnsAbsent(t *testing.T) {
	rw := New(testCatalog(), Options{})
	// Query only touches t; the x>y and z<2 conditions cannot and need not
	// be evaluated anywhere.
	out, rep := mustRewrite(t, rw, "SELECT t FROM d", actionFilter(t))
	if out.Where != nil {
		t.Fatalf("no condition should be injected: %s", out.SQL())
	}
	if len(rep.InjectedWhere) != 0 {
		t.Fatalf("report claims injections: %v", rep.InjectedWhere)
	}
}

func TestAggregationNotForcedWhenNotProjected(t *testing.T) {
	rw := New(testCatalog(), Options{})
	// z is only filtered on, not projected: no aggregation rewrite needed,
	// but the z<2 condition still applies.
	out, rep := mustRewrite(t, rw, "SELECT x, y FROM d", actionFilter(t))
	if len(rep.EnforcedAggregations) != 0 {
		t.Fatalf("no aggregation should be enforced: %v", rep.EnforcedAggregations)
	}
	if out.Where == nil || !strings.Contains(out.Where.SQL(), "x > y") {
		t.Fatalf("x > y should still be injected: %s", out.SQL())
	}
}

func TestGroupByConflictRejected(t *testing.T) {
	rw := New(testCatalog(), Options{})
	_, _, err := rw.Rewrite(mustParse(t, "SELECT z, AVG(x) FROM d GROUP BY z"), actionFilter(t))
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("conflicting GROUP BY should be rejected, got %v", err)
	}
}

func TestCompatibleGroupByMerged(t *testing.T) {
	rw := New(testCatalog(), Options{})
	out, rep := mustRewrite(t, rw, "SELECT x, y, z FROM d GROUP BY x, y", actionFilter(t))
	if rep.EnforcedAggregations["z"] != "zavg" {
		t.Fatalf("z should be aggregated: %s", out.SQL())
	}
	if len(out.GroupBy) != 2 {
		t.Fatalf("GROUP BY should stay x, y: %s", out.SQL())
	}
	if out.Having == nil {
		t.Fatalf("mandated HAVING missing: %s", out.SQL())
	}
}

func TestTableSubstitution(t *testing.T) {
	rw := New(testCatalog(), Options{TableSubstitutions: map[string]string{"d": "stream"}})
	mod := policy.DefaultModule("any", schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat), schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat), schema.Col("t", schema.TypeInt),
	))
	out, rep := mustRewrite(t, rw, "SELECT x, y FROM d", mod)
	tn, ok := out.From.(*sqlparser.TableName)
	if !ok || tn.Name != "stream" {
		t.Fatalf("FROM should be stream: %s", out.SQL())
	}
	if tn.Alias != "d" {
		t.Fatalf("old name should remain as alias: %s", out.SQL())
	}
	if rep.SubstitutedTables["d"] != "stream" {
		t.Fatalf("report = %v", rep.SubstitutedTables)
	}
}

func TestNoChangeForCompliantQuery(t *testing.T) {
	rw := New(testCatalog(), Options{})
	mod := policy.DefaultModule("thermo", schema.NewRelation("thermometer",
		schema.Col("sensor_id", schema.TypeInt),
		schema.Col("t", schema.TypeInt),
		schema.Col("celsius", schema.TypeFloat),
	))
	in := "SELECT sensor_id, AVG(celsius) AS c FROM thermometer GROUP BY sensor_id"
	out, rep := mustRewrite(t, rw, in, mod)
	if rep.Changed() {
		t.Fatalf("compliant query should pass unchanged: %s", rep.Summary())
	}
	if out.SQL() != mustParse(t, in).SQL() {
		t.Fatalf("query modified: %s", out.SQL())
	}
}

func TestRewriteDoesNotMutateInput(t *testing.T) {
	rw := New(testCatalog(), Options{})
	in := mustParse(t, "SELECT x, y, z, t FROM d")
	before := in.SQL()
	_, _, err := rw.Rewrite(in, actionFilter(t))
	if err != nil {
		t.Fatal(err)
	}
	if in.SQL() != before {
		t.Fatalf("input mutated: %s", in.SQL())
	}
}

func TestReportSummary(t *testing.T) {
	rw := New(testCatalog(), Options{})
	_, rep := mustRewrite(t, rw,
		"SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (SELECT x, y, z, t FROM d)",
		actionFilter(t))
	s := rep.Summary()
	for _, want := range []string{"where+", "having+", "aggregated"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q lacks %q", s, want)
		}
	}
	empty := newReport()
	if empty.Changed() || empty.Summary() == "" {
		t.Error("empty report misbehaves")
	}
}

func TestUnknownRelationUnsupported(t *testing.T) {
	rw := New(testCatalog(), Options{})
	_, _, err := rw.Rewrite(mustParse(t, "SELECT x FROM nosuch"), actionFilter(t))
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestStreamPolicyUseCase(t *testing.T) {
	// The sensor-level form of the use case: SELECT * FROM stream with the
	// ActionFilter policy denies tag_id and injects z < 2 (x > y is also a
	// policy condition and lands in the same WHERE).
	rw := New(testCatalog(), Options{})
	out, _ := mustRewrite(t, rw, "SELECT * FROM stream", actionFilter(t))
	inner := sqlparser.InnermostSelect(out)
	if inner.Where == nil || !strings.Contains(inner.Where.SQL(), "z < 2") {
		t.Fatalf("z < 2 missing: %s", out.SQL())
	}
	for _, it := range out.Items {
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && c.Name == "tag_id" {
			t.Fatal("tag_id leaked")
		}
	}
}

func exprSQLs(es []sqlparser.Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.SQL()
	}
	return out
}
