package recognition

import (
	paradise "paradise"
	"paradise/internal/recognition"
	"paradise/internal/sensors"
)

type (
	// Node is one stage of an analysis pipeline.
	Node = recognition.Node
	// SQLNode embeds a SQL query (the sqldf part that PArADISE extracts,
	// rewrites and pushes down).
	SQLNode = recognition.SQLNode
	// FilterByClassNode keeps rows whose classified activity matches.
	FilterByClassNode = recognition.FilterByClassNode
	// KalmanNode smooths the height signal with a scalar Kalman filter.
	KalmanNode = recognition.KalmanNode
	// DataNode reads a pre-materialized frame by name.
	DataNode = recognition.DataNode
)

// PaperPipeline returns the paper's §4.2 example analysis: a Kalman filter
// over an embedded SQL query, filtered to walking.
func PaperPipeline() (*FilterByClassNode, error) { return recognition.PaperPipeline() }

// Annotate classifies every row of a result into an activity; it needs
// entity and time columns (falls back with an error otherwise).
func Annotate(in *paradise.Result) ([]sensors.Activity, error) { return recognition.Annotate(in) }

// Classify maps a height and speed to an activity — the simple recognizer
// behind Annotate.
func Classify(z, speed float64) sensors.Activity { return recognition.Classify(z, speed) }

// Accuracy compares annotated activities against a trace's ground truth.
func Accuracy(tr *sensors.Trace, in *paradise.Result, acts []sensors.Activity) (float64, error) {
	return recognition.Accuracy(tr, in, acts)
}
