// Package recognition is the public face of the paper's analysis-pipeline
// substrate (§4.2): R-style pipelines with an embedded SQL part (the
// Poodle cloud's Kalman-filter activity recognition), plus the activity
// classifier used to check that the privacy-processed d′ still supports
// the intended analysis. Pipelines are processed end to end with
// paradise.Session.ProcessPipeline.
package recognition
