#!/bin/sh
# docslint: fail when any package in the module lacks a package comment.
#
# go doc renders the comment on the line(s) after the "package X" clause;
# here we check the sources directly: every package directory must contain
# at least one non-test .go file whose package clause is preceded by a
# "// Package <name> ..." (or "// Command <name> ...", for main packages)
# comment. Keeping this green keeps `go doc ./...` explaining every layer.
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    name=$(go list -f '{{.Name}}' "$dir")
    found=0
    for f in "$dir"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        [ -e "$f" ] || continue
        if [ "$name" = "main" ]; then
            # Commands: any doc comment directly above the package clause
            # counts (the examples open with "// Quickstart ...", etc.).
            if awk 'prev ~ /^\/\// && /^package main/ {ok=1} {prev=$0} END {exit !ok}' "$f"; then
                found=1
                break
            fi
        elif grep -q "^// Package $name" "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" = 0 ]; then
        echo "missing package comment: $dir (package $name)"
        fail=1
    fi
done
if [ "$fail" = 1 ]; then
    echo "docslint: add a '// Package <name> ...' comment (idiomatically in doc.go)"
    exit 1
fi
echo "docslint: every package has a package comment"
