#!/bin/sh
# blockguard.sh — the block algebra has exactly one home.
#
# Query-block decomposition ([Limit][Sort][Distinct][Agg|Window|Project]
# [Filter*]) and the column-requirement rules used to be implemented three
# and two times respectively (plan.splitBlock, engine.gatherBlock,
# fragment.gatherBlock; engine.derivePushdown, plan blockOps.requirements)
# and diverged subtly. They were unified into plan.Block (SplitBlock /
# Rebuild / Requirements). This guard fails the build if any of the old
# names reappears in Go code — a sure sign a layer is growing its own copy
# of the block rules again.
set -eu
cd "$(dirname "$0")/.."

hits=$(grep -rn --include='*.go' 'gatherBlock\|splitBlock\|derivePushdown' . || true)
if [ -n "$hits" ]; then
	echo "block decomposition / column-requirement logic must live in internal/plan"
	echo "(plan.Block, plan.SplitBlock, Block.Requirements) — found forks:"
	echo "$hits"
	exit 1
fi
echo "blockguard: ok (no duplicated block decomposition found)"
