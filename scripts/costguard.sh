#!/bin/sh
# costguard.sh — the cost model never changes answers, only traffic.
#
# Cost-based placement (internal/fragment/place.go) and join reordering
# (internal/plan/reorder.go) consume the cardinality model
# (internal/plan/estimate.go). All three are allowed to move WORK around
# — which node runs a stage, which join builds first — but never to change
# WHAT the query returns or what leaves the apartment. This script runs
# the suites that pin exactly that contract:
#
#   - placement equivalence: cost-based vs fixed MinLevel, rows + order +
#     raw/egress/per-stage bytes identical, expanding shapes strictly
#     cheaper on the wire, shrinking shapes byte-identical;
#   - modeled vs measured: estimates exact for predicate-free scans,
#     within the error band elsewhere, golden table unchanged;
#   - reorder goldens + row identity on NULL/duplicate-key fixtures;
#   - placement + estimator fuzz under hostile statistics.
#
# Everything runs serially AND under -race -cpu 1,4 so the placement
# decisions are also exercised through the morsel-parallel exchange.
set -eu
cd "$(dirname "$0")/.."

run='TestPlacementEquivalence|TestPlacementEquivalenceParallel|TestCostPlacementReducesLinkBytes|TestModeledVsMeasured'
frag='TestPlace'
plan='TestEstimate|TestReorder'
eng='TestReorder'

go test -run "$run" .
go test -run "$frag" ./internal/fragment/
go test -run "$plan" ./internal/plan/
go test -run "$eng" ./internal/engine/

go test -race -cpu 1,4 -run "$run" .
go test -race -cpu 1,4 -run "$frag" ./internal/fragment/
go test -race -cpu 1,4 -run "$plan" ./internal/plan/
go test -race -cpu 1,4 -run "$eng" ./internal/engine/

echo "costguard: ok (cost model moves traffic, never answers)"
