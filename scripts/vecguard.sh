#!/bin/sh
# vecguard.sh — the filter kernels stay columnar.
#
# internal/engine/veckernel.go is the vectorized inner loop: comparison and
# NULL-test kernels that refine selection vectors over typed column payloads.
# Its whole reason to exist is that no row is ever pivoted before the filter
# decides; the moment a kernel reaches for a row-major helper (ColBatch.Rows,
# ColBatch.RowAt, schema.Row values) the batch gets re-materialized per row
# and the vectorized path silently degrades to the row path with extra
# steps. Pivoting belongs to the boundary layers (vecscan.go residuals,
# vecblock.go/vecgroup.go output), never to the kernels.
set -eu
cd "$(dirname "$0")/.."

hits=$(grep -n '\.Rows()\|RowAt\|schema\.Row\b' internal/engine/veckernel.go || true)
if [ -n "$hits" ]; then
	echo "veckernel.go must stay columnar — no row pivots inside kernels"
	echo "(ColBatch.Rows / RowAt / schema.Row belong to the pivot boundary):"
	echo "$hits"
	exit 1
fi
echo "vecguard: ok (kernels are pivot-free)"
