#!/bin/sh
# vecguard.sh — the vectorized kernels stay columnar.
#
# internal/engine/veckernel.go is the vectorized inner loop: comparison and
# NULL-test kernels that refine selection vectors over typed column payloads.
# internal/engine/vecjoin.go is the vectorized hash-join probe: group-key
# construction, selection-vector matching and gather over the same payloads.
# internal/engine/vecsort.go holds the typed sort keys (schema.KeyCol) the
# ORDER BY and window paths compare unboxed.
#
# Their whole reason to exist is that no row is ever pivoted before the
# kernel decides; the moment one reaches for a row-major helper
# (ColBatch.Rows, ColBatch.RowAt, schema.Row values) the batch gets
# re-materialized per row and the vectorized path silently degrades to the
# row path with extra steps. Pivoting belongs to the boundary layers
# (vecscan.go residuals, vecblock.go/vecgroup.go output, the join's
# post-match gather into output rows), never to the kernels.
set -eu
cd "$(dirname "$0")/.."

status=0
for f in internal/engine/veckernel.go internal/engine/vecjoin.go internal/engine/vecsort.go; do
	hits=$(grep -n '\.Rows()\|RowAt\|schema\.Row\b' "$f" || true)
	if [ -n "$hits" ]; then
		echo "$f must stay columnar — no row pivots inside kernels"
		echo "(ColBatch.Rows / RowAt / schema.Row belong to the pivot boundary):"
		echo "$hits"
		status=1
	fi
done
[ "$status" -eq 0 ] || exit "$status"
echo "vecguard: ok (kernels are pivot-free)"
