#!/bin/sh
# servesmoke.sh — end-to-end smoke test of the serving layer.
#
# Builds paradised and loadgen, starts the server on an ephemeral port,
# then exercises the public surface the way a client would: one streamed
# HTTP query (assert 200 + every line valid NDJSON + a stats trailer), one
# denied query (assert 403), the stats endpoint, and a short loadgen burst
# (assert zero transport errors and a nonzero plan-cache hit count).
# Finishes with SIGTERM and asserts the drain exits cleanly.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
	[ -n "${srv_pid:-}" ] && kill "$srv_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/paradised" ./cmd/paradised
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/paradised" -addr 127.0.0.1:0 -duration 30s >"$tmp/server.log" 2>&1 &
srv_pid=$!

# The server prints "paradised listening on http://ADDR" once ready.
base=""
for _ in $(seq 1 50); do
	base=$(sed -n 's/^paradised listening on \(http:[^ ]*\).*/\1/p' "$tmp/server.log")
	[ -n "$base" ] && break
	kill -0 "$srv_pid" 2>/dev/null || { echo "servesmoke: server died:"; cat "$tmp/server.log"; exit 1; }
	sleep 0.2
done
[ -n "$base" ] || { echo "servesmoke: server never announced its address"; cat "$tmp/server.log"; exit 1; }
echo "servesmoke: server at $base"

# 1. One streamed query: 200, NDJSON all the way down, stats trailer last.
code=$(curl -s -o "$tmp/query.ndjson" -w '%{http_code}' -X POST "$base/v1/query" \
	-H 'Content-Type: application/json' \
	-d '{"sql":"SELECT x, AVG(z) AS za FROM d GROUP BY x"}')
[ "$code" = "200" ] || { echo "servesmoke: query status $code"; cat "$tmp/query.ndjson"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
	python3 - "$tmp/query.ndjson" <<-'EOF'
	import json, sys
	lines = [l for l in open(sys.argv[1]) if l.strip()]
	msgs = [json.loads(l) for l in lines]          # raises on any torn line
	assert msgs[0]["type"] == "schema", msgs[0]
	assert msgs[-1]["type"] == "stats", msgs[-1]
	assert all(m["type"] == "row" for m in msgs[1:-1])
	assert msgs[-1]["rows"] == len(msgs) - 2, (msgs[-1]["rows"], len(msgs))
	print("servesmoke: NDJSON ok (%d rows)" % msgs[-1]["rows"])
	EOF
else
	# Fallback: shape checks only — first line schema, last line stats,
	# every line a complete {...} object.
	head -1 "$tmp/query.ndjson" | grep -q '"type":"schema"'
	tail -1 "$tmp/query.ndjson" | grep -q '"type":"stats"'
	! grep -cv '^{.*}$' "$tmp/query.ndjson" >/dev/null
	echo "servesmoke: NDJSON ok (shape checks)"
fi

# 2. A policy-denied query maps to 403 with a structured body.
code=$(curl -s -o "$tmp/denied.json" -w '%{http_code}' -X POST "$base/v1/query" \
	-d '{"sql":"SELECT user FROM d"}')
[ "$code" = "403" ] || { echo "servesmoke: denied query status $code"; cat "$tmp/denied.json"; exit 1; }
grep -q '"code":"policy_violation"' "$tmp/denied.json"
echo "servesmoke: 403 mapping ok"

# 3. Stats endpoint is live JSON.
curl -sf "$base/v1/stats" | grep -q '"plan_cache"'
echo "servesmoke: stats ok"

# 4. A loadgen burst completes with zero errors and plan-cache hits.
"$tmp/loadgen" -addr "$base" -concurrency 4 -duration 3s -out "$tmp/bench.json"
if command -v python3 >/dev/null 2>&1; then
	python3 - "$tmp/bench.json" <<-'EOF'
	import json, sys
	rec = json.load(open(sys.argv[1]))
	assert rec["results"]["errors_total"] == 0, rec["results"]
	assert rec["results"]["queries_total"] > 0, rec["results"]
	assert rec["server_stats"]["plan_cache"]["hits"] > 0, rec["server_stats"]
	print("servesmoke: loadgen ok (%d queries, %.0f q/s)"
	      % (rec["results"]["queries_total"], rec["results"]["throughput_qps"]))
	EOF
else
	grep -q '"errors_total": 0' "$tmp/bench.json"
	echo "servesmoke: loadgen ok (shape checks)"
fi

# 5. SIGTERM drains and exits cleanly.
kill -TERM "$srv_pid"
i=0
while kill -0 "$srv_pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -le 50 ] || { echo "servesmoke: server did not exit after SIGTERM"; exit 1; }
	sleep 0.2
done
srv_pid=""
grep -q "final stats:" "$tmp/server.log" || { echo "servesmoke: no final stats line"; cat "$tmp/server.log"; exit 1; }
echo "servesmoke: graceful shutdown ok"
echo "servesmoke: all checks passed"
