#!/bin/sh
# segguard.sh — physical storage layout never changes answers.
#
# Segmented storage (internal/storage/store.go), zone-map pruning
# (internal/storage/segment.go) and the on-disk backend
# (internal/storage/disk.go) are allowed to change WHERE rows live and
# WHICH segments a scan touches — never which rows come back, in what
# order, or what the Figure 3 accounting reports. This script runs the
# suites that pin exactly that contract:
#
#   - segmented vs monolithic equivalence: segment sizes {1, 7, 256,
#     one-segment}, pruning on vs off, memory vs disk — rows, order and
#     statistics identical on every scan surface;
#   - facade equivalence: the same queries over segmented and disk-backed
#     stores are row- and Figure-3-byte-identical to the monolithic
#     baseline, including after a recovery (simulated restart);
#   - pruning fuzz: random data and random predicates, no skipped segment
#     ever contained a row the predicate needed (a match OR an error);
#   - crash recovery: torn files, trailing garbage, holes and stale temp
#     files truncate to a clean sealed prefix and ingest resumes;
#   - scan discipline: LIMIT stops opening segments, pushdown sends only
#     the kernelizable conjunct prefix to storage.
#
# Everything runs serially AND under -race -cpu 1,4 so segment admission,
# the shared morsel cursor and lazy disk decode are exercised through the
# parallel exchange too.
set -eu
cd "$(dirname "$0")/.."

stor='TestSegmentedEquivalence|TestZonePruneFuzz|TestDiskRoundTrip|TestDiskCrashRecovery|TestDiskBitRotSurfacesOnScan'
facade='TestSegmentedStoreEquivalence|TestDiskStoreEquivalence'
eng='TestLimitStopsOpeningSegments|TestPruningSkipsSegmentsUnderSQL|TestPushdownDeclineShapes'

go test -run "$stor" ./internal/storage/
go test -run "$facade" .
go test -run "$eng" ./internal/engine/

go test -race -cpu 1,4 -run "$stor" ./internal/storage/
go test -race -cpu 1,4 -run "$facade" .
go test -race -cpu 1,4 -run "$eng" ./internal/engine/

echo "segguard: ok (storage layout moves segments, never answers)"
