package anonymize

import (
	"math/rand"

	paradise "paradise"
	"paradise/internal/anonymize"
)

// DetectQuasiIdentifiers returns the columns whose value combinations make
// rows re-identifiable above the risk threshold.
func DetectQuasiIdentifiers(rel *paradise.Relation, rows paradise.Rows, riskThreshold float64) []string {
	return anonymize.DetectQuasiIdentifiers(rel, rows, riskThreshold)
}

// Mondrian enforces k-anonymity over the quasi-identifiers by
// multidimensional median partitioning.
func Mondrian(rel *paradise.Relation, rows paradise.Rows, qi []string, k int) (paradise.Rows, error) {
	return anonymize.Mondrian(rel, rows, qi, k)
}

// FullDomain enforces k-anonymity by full-domain generalization (Samarati),
// suppressing at most maxSuppress rows; it returns the anonymized rows and
// the suppression count.
func FullDomain(rel *paradise.Relation, rows paradise.Rows, qi []string, k, maxSuppress int) (paradise.Rows, int, error) {
	return anonymize.FullDomain(rel, rows, qi, k, maxSuppress)
}

// EnforceLDiversity suppresses equivalence classes with fewer than l
// distinct sensitive values (homogeneity-attack defence).
func EnforceLDiversity(rel *paradise.Relation, rows paradise.Rows, qi []string, sensitive string, l int) (paradise.Rows, int, error) {
	return anonymize.EnforceLDiversity(rel, rows, qi, sensitive, l)
}

// Slice permutes column groups within buckets (Li et al.), breaking
// linkage while preserving marginals.
func Slice(rel *paradise.Relation, rows paradise.Rows, colGroups [][]string, bucketSize int, rng *rand.Rand) (paradise.Rows, error) {
	return anonymize.Slice(rel, rows, colGroups, bucketSize, rng)
}

// NoisyRows adds Laplace noise calibrated to sensitivity/epsilon to the
// named numeric columns.
func NoisyRows(rel *paradise.Relation, rows paradise.Rows, cols []string, sensitivity, epsilon float64, rng *rand.Rand) (paradise.Rows, error) {
	return anonymize.NoisyRows(rel, rows, cols, sensitivity, epsilon, rng)
}

// IsKAnonymous checks whether every equivalence class over the
// quasi-identifiers has at least k members.
func IsKAnonymous(rel *paradise.Relation, rows paradise.Rows, qi []string, k int) (bool, error) {
	return anonymize.IsKAnonymous(rel, rows, qi, k)
}
