// Package anonymize is the public face of the postprocessing algorithms A
// of §3.2, for callers that want to study or apply anonymization outside a
// paradise Session (a Session applies them automatically via
// paradise.WithAnonymization): k-anonymity (multidimensional Mondrian and
// full-domain generalization), l-diversity, slicing and the Laplace
// mechanism for differential privacy, plus quasi-identifier detection.
package anonymize
