package experiments

import (
	"time"

	paradise "paradise"
	"paradise/internal/experiments"
)

type (
	// Table1Row is one rung of the capability ladder E1..E4.
	Table1Row = experiments.Table1Row
	// Figure1Result summarizes one Smart Appliance Lab trace generation.
	Figure1Result = experiments.Figure1Result
	// Figure2Result holds the per-stage latencies of the processor.
	Figure2Result = experiments.Figure2Result
	// Figure3Row compares naive and fragmented egress at one data size.
	Figure3Row = experiments.Figure3Row
	// LadderRow is one granularity step of the fragmentation ablation.
	LadderRow = experiments.LadderRow
	// FanInRow is one sensor-count step of the fan-in study.
	FanInRow = experiments.FanInRow
	// Figure4Result checks the policy rewrite against the published one.
	Figure4Result = experiments.Figure4Result
	// StageCheck compares one pushdown stage against the paper's listing.
	StageCheck = experiments.StageCheck
	// UseCaseResult is the §4.2 staged pushdown verification.
	UseCaseResult = experiments.UseCaseResult
	// Sec32Row is one method/parameter point of the §3.2 study.
	Sec32Row = experiments.Sec32Row
	// OpenProblemRow is one audited query of the §4.1/§5 open problem.
	OpenProblemRow = experiments.OpenProblemRow
	// PlacementRow is one step of the condition-placement ablation.
	PlacementRow = experiments.PlacementRow
	// FallbackRow is one configuration of the weak-node fallback ablation.
	FallbackRow = experiments.FallbackRow
	// GoldenPathRow is one variant of the intended-analysis quality study.
	GoldenPathRow = experiments.GoldenPathRow
)

// UseCaseQuery is the rewritten §4.2 query; OriginalUseCaseQuery the one
// the provider submits.
const (
	UseCaseQuery         = experiments.UseCaseQuery
	OriginalUseCaseQuery = experiments.OriginalUseCaseQuery
)

// SyntheticDB builds the n-row synthetic database d used by the exhibits.
func SyntheticDB(n int, seed int64) *paradise.Store { return experiments.SyntheticDB(n, seed) }

// Table1 probes one representative query per capability rung.
func Table1(n int, seed int64) ([]Table1Row, error) { return experiments.Table1(n, seed) }

// Figure1 generates the full device-ensemble trace and reports sizes.
func Figure1(personCount int, dur time.Duration, seed int64) (*Figure1Result, error) {
	return experiments.Figure1(personCount, dur, seed)
}

// Figure2 measures the stage latencies of the privacy-aware processor.
func Figure2(n int, seed int64) (*Figure2Result, error) { return experiments.Figure2(n, seed) }

// Figure3 measures data leaving the apartment with and without
// fragmentation at several database sizes.
func Figure3(sizes []int, seed int64) ([]Figure3Row, error) { return experiments.Figure3(sizes, seed) }

// Figure3Ladder ablates fragmentation granularity at one size.
func Figure3Ladder(n int, seed int64) ([]LadderRow, error) { return experiments.Figure3Ladder(n, seed) }

// Figure3FanIn spreads the base data over many sensors (Table 1 node
// counts) and measures the fan-in.
func Figure3FanIn(n int, sensorCounts []int, seed int64) ([]FanInRow, error) {
	return experiments.Figure3FanIn(n, sensorCounts, seed)
}

// Figure4 checks the policy rewrite against the published transformation.
func Figure4(n int, seed int64) (*Figure4Result, error) { return experiments.Figure4(n, seed) }

// UseCase verifies the §4.2 staged pushdown stage by stage.
func UseCase(n int, seed int64) (*UseCaseResult, error) { return experiments.UseCase(n, seed) }

// Sec32 runs the §3.2 information-loss-versus-privacy study.
func Sec32(n int, seed int64) ([]Sec32Row, error) { return experiments.Sec32(n, seed) }

// OpenProblem audits a battery of queries against the released view.
func OpenProblem(n int, seed int64) ([]OpenProblemRow, error) {
	return experiments.OpenProblem(n, seed)
}

// GoldenPath measures intended-analysis quality under privacy processing.
func GoldenPath(dur time.Duration, seed int64) ([]GoldenPathRow, error) {
	return experiments.GoldenPath(dur, seed)
}

// AblationConditionPlacement compares innermost vs outermost condition
// placement.
func AblationConditionPlacement(n int, seed int64) ([]PlacementRow, error) {
	return experiments.AblationConditionPlacement(n, seed)
}

// AblationWeakNode studies the §3.2 weak-node fallback.
func AblationWeakNode(n int, seed int64) ([]FallbackRow, error) {
	return experiments.AblationWeakNode(n, seed)
}
