// Package experiments is the public face of the reproduction harness: it
// regenerates every exhibit of the paper (Table 1, Figures 1-4, the §4.2
// staged pushdown, the §3.2 information-loss study and the DESIGN.md
// ablations) as structured rows. cmd/benchrunner formats them; the root
// package's benchmarks measure them.
package experiments
