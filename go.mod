module paradise

go 1.23
