package paradise

import (
	"io"
	gotime "time"

	"paradise/internal/audit"
	"paradise/internal/containment"
	"paradise/internal/core"
	"paradise/internal/engine"
	"paradise/internal/network"
	"paradise/internal/policy"
	"paradise/internal/rewrite"
	"paradise/internal/schema"
	"paradise/internal/storage"
)

// This file re-exports the vocabulary types of the processor so that
// embedding applications configure and consume sessions without ever
// importing an internal package. The aliases are identities — a *Policy
// built here is exactly what the internal rewriter checks against.

type (
	// Store is the integrated sensor database d of one environment: a
	// named collection of in-memory tables.
	Store = storage.Store
	// Table is one append-only relation of a Store.
	Table = storage.Table
	// Relation describes a table or result schema.
	Relation = schema.Relation
	// Column is one attribute of a Relation.
	Column = schema.Column
	// Catalog indexes relations by name, for policy generation and
	// rewrite reasoning.
	Catalog = schema.Catalog
	// Row is one tuple; Rows a sequence of them.
	Row = schema.Row
	// Rows is a sequence of tuples.
	Rows = schema.Rows
	// Value is one typed cell of a Row.
	Value = schema.Value

	// Policy is a user's privacy policy: one Module per analysis
	// functionality (§3.3, Figure 4).
	Policy = policy.Policy
	// PolicyModule holds the per-attribute rules for one analysis module.
	PolicyModule = policy.Module
	// PolicyAttribute is the rule set for one attribute.
	PolicyAttribute = policy.Attribute

	// Topology is the vertical peer chain of Figure 3 (sensor →
	// appliance → ... → cloud).
	Topology = network.Topology
	// RunStats is the Figure 3 accounting of one chain execution: per-node
	// assignments, per-link traffic, raw and egress bytes, simulated time.
	RunStats = network.RunStats

	// Result is a materialized relation: schema plus rows.
	Result = engine.Result

	// Outcome is the audit trail of one processed query: original and
	// rewritten SQL, fragment plan, transfer stats, result.
	Outcome = core.Outcome
	// PipelineOutcome extends Outcome for analysis pipelines with the
	// cloud-side residual.
	PipelineOutcome = core.PipelineOutcome
	// AnonConfig tunes the postprocessing (anonymization) stage.
	AnonConfig = core.AnonConfig
	// AnonMethod selects the postprocessing algorithm.
	AnonMethod = core.AnonMethod
	// AnonReport documents what the postprocessor did.
	AnonReport = core.AnonReport

	// RewriteOptions tune the preprocessor (table substitutions).
	RewriteOptions = rewrite.Options
	// RewriteReport details the policy transformations applied to a query.
	RewriteReport = rewrite.Report

	// Journal records an audit entry for every processed query, including
	// denials (provenance, cf. [Heu15]).
	Journal = audit.Journal
	// JournalEntry is one record of the Journal.
	JournalEntry = audit.Entry

	// Verdict is the outcome of a residual-risk audit: whether a
	// privacy-violating query is still answerable from the released d′.
	Verdict = containment.Verdict

	// PlanCache memoizes prepared statements — the rewrite → lower →
	// annotate → fragment pipeline — across the sessions that share it
	// (Open(..., WithPlanCache(c))). Keys include the normalized SQL, the
	// policy module, the policy fingerprint and the store's schema epoch.
	PlanCache = core.PlanCache
	// PlanCacheStats is a snapshot of plan-cache effectiveness:
	// hits, misses, evictions, occupancy.
	PlanCacheStats = core.CacheStats
)

// Available postprocessing methods (§3.2 names them all).
const (
	AnonNone         = core.AnonNone
	AnonMondrian     = core.AnonMondrian
	AnonFullDomain   = core.AnonFullDomain
	AnonSlicing      = core.AnonSlicing
	AnonDifferential = core.AnonDifferential
)

// Type is the type of a column or value.
type Type = schema.Type

// The value types.
const (
	TypeBool   = schema.TypeBool
	TypeInt    = schema.TypeInt
	TypeFloat  = schema.TypeFloat
	TypeString = schema.TypeString
	TypeTime   = schema.TypeTime
)

// NewStore creates an empty database.
func NewStore() *Store { return storage.NewStore() }

// StoreConfig tunes a store's segmented storage layer.
type StoreConfig struct {
	// Dir, when non-empty, persists sealed segments on disk under this
	// directory (one file per segment, recovered on the next NewStoreWith).
	// Empty keeps everything in memory.
	Dir string
	// SegmentRows is the seal threshold; <= 0 selects the default (4096).
	SegmentRows int
	// DisablePruning turns zone-map segment pruning off, for A/B
	// measurement. Results are identical either way.
	DisablePruning bool
}

// StorageStats aggregates a store's physical-layout and pruning counters.
type StorageStats = storage.StorageStats

// NewStoreWith creates a database with explicit storage configuration.
// With a Dir, previously sealed tables are recovered before it returns:
// schemas and statistics come from the segment footers, rows are served
// lazily from disk.
func NewStoreWith(cfg StoreConfig) (*Store, error) {
	c := storage.Config{SegmentRows: cfg.SegmentRows, DisablePruning: cfg.DisablePruning}
	if cfg.Dir != "" {
		b, err := storage.NewDiskBackend(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.Backend = b
	}
	return storage.NewStoreWith(c)
}

// NewRelation builds a relation schema, for Store.Create.
func NewRelation(name string, cols ...Column) *Relation { return schema.NewRelation(name, cols...) }

// Col declares one column of a relation.
func Col(name string, t Type) Column { return schema.Col(name, t) }

// SensitiveCol declares a column carrying personal data; generated
// policies deny it by default.
func SensitiveCol(name string, t Type) Column { return schema.SensitiveCol(name, t) }

// Value constructors for ingesting rows.
func Null() Value              { return schema.Null() }
func Bool(b bool) Value        { return schema.Bool(b) }
func Int(i int64) Value        { return schema.Int(i) }
func Float(f float64) Value    { return schema.Float(f) }
func String(s string) Value    { return schema.String(s) }
func Time(t gotime.Time) Value { return schema.Time(t) }

// NewJournal creates an empty audit journal, for Open(..., WithJournal(j)).
func NewJournal() *Journal { return audit.NewJournal() }

// NewPlanCache creates a prepared-plan cache holding at most capacity
// entries (<= 0 selects a sensible default), for Open(..., WithPlanCache(c)).
func NewPlanCache(capacity int) *PlanCache { return core.NewPlanCache(capacity) }

// DefaultApartment builds the Figure 3 chain: sensor → appliance → media
// center → apartment PC → cloud.
func DefaultApartment() *Topology { return network.DefaultApartment() }

// Figure4Policy returns the paper's example policy (Figure 4): positions x
// and y revealed as-is, height z only as AVG grouped by (x, y) with the
// SUM(z) > 100 safeguard, identity denied.
func Figure4Policy() *Policy { return policy.Figure4() }

// ParsePolicy reads a policy from its XML form.
func ParsePolicy(r io.Reader) (*Policy, error) { return policy.Parse(r) }

// ParsePolicyBytes is ParsePolicy over a byte slice.
func ParsePolicyBytes(data []byte) (*Policy, error) { return policy.ParseBytes(data) }

// GeneratePolicy derives a default policy for every relation of a catalog:
// one module per relation with sensitive attributes denied (the automatic
// generation of privacy settings of §3).
func GeneratePolicy(cat *Catalog) *Policy { return policy.GenerateForCatalog(cat) }

// DefaultPolicyModule derives the default module for one relation
// (sensitive attributes denied, everything else allowed).
func DefaultPolicyModule(id string, rel *Relation) *PolicyModule {
	return policy.DefaultModule(id, rel)
}

// WriteCSV writes a relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation, rows Rows) error { return storage.WriteCSV(w, rel, rows) }

// ReadCSV loads CSV data (with header) into rows following the relation's
// declared column order and types.
func ReadCSV(r io.Reader, rel *Relation) (Rows, error) { return storage.ReadCSV(r, rel) }
