// Command benchrunner regenerates every exhibit of the paper — Table 1,
// Figures 1-4, the §4.2 staged pushdown and the §3.2 information-loss study,
// plus the DESIGN.md ablations — as formatted text. EXPERIMENTS.md records a
// reference run of this tool.
//
// Usage:
//
//	benchrunner               # run everything
//	benchrunner table1 fig3   # run selected exhibits
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"paradise/experiments"
	"paradise/sensorsim"
)

const seed = 2016

func main() {
	log.SetFlags(0)
	var n = flag.Int("n", 10_000, "synthetic database size (rows)")
	flag.Parse()

	run := map[string]bool{}
	for _, a := range flag.Args() {
		run[a] = true
	}
	all := len(run) == 0
	want := func(name string) bool { return all || run[name] }

	if want("table1") {
		table1(*n)
	}
	if want("fig1") || want("figure1") {
		figure1()
	}
	if want("fig2") || want("figure2") {
		figure2(*n)
	}
	if want("fig3") || want("figure3") {
		figure3()
	}
	if want("fig4") || want("figure4") {
		figure4(*n)
	}
	if want("usecase") {
		usecase(*n)
	}
	if want("sec32") {
		sec32(*n)
	}
	if want("openproblem") {
		openproblem(*n)
	}
	if want("goldenpath") {
		goldenpath()
	}
	if want("ablations") {
		ablations(*n)
	}
}

func header(s string) { fmt.Printf("\n================ %s ================\n\n", s) }

func table1(n int) {
	header("Table 1 — capability ladder E1..E4")
	rows, err := experiments.Table1(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-13s %-32s %-14s %10s %12s\n", "level", "system", "nodes/person", "rows", "elapsed")
	for _, r := range rows {
		fmt.Printf("%-13s %-32s %-14s %10d %12v\n",
			r.Level, r.System, r.Nodes, r.Rows, r.Elapsed.Round(10*time.Microsecond))
		fmt.Printf("              capability: %s\n", r.Capability)
		fmt.Printf("              probe:      %s\n", r.Query)
	}
}

func figure1() {
	header("Figure 1 — Smart Appliance Lab trace generation")
	res, err := experiments.Figure1(5, 60*time.Second, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s: %d persons, %v, generated in %v\n\n",
		res.Scenario, res.Persons, res.Duration, res.Elapsed.Round(time.Millisecond))
	for _, dev := range sensorsim.AllDevices {
		fmt.Printf("  %-13s %7d rows\n", dev, res.PerDevice[dev])
	}
	fmt.Printf("  %-13s %7d rows\n", "d (integrated)", res.Integrated)
	fmt.Printf("\ntotal %d rows, %d wire bytes (%.1f rows/person/s)\n",
		res.TotalRows, res.WireBytes,
		float64(res.TotalRows)/float64(res.Persons)/res.Duration.Seconds())
}

func figure2(n int) {
	header("Figure 2 — privacy-aware processor stage latencies")
	res, err := experiments.Figure2(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d rows\n\n", res.Rows)
	fmt.Printf("  %-28s %12v\n", "parse", res.Parse.Round(time.Microsecond))
	fmt.Printf("  %-28s %12v\n", "rewrite (preprocessor)", res.Rewrite.Round(time.Microsecond))
	fmt.Printf("  %-28s %12v\n", "fragment", res.Fragment.Round(time.Microsecond))
	fmt.Printf("  %-28s %12v\n", "execute (chain)", res.Execute.Round(time.Microsecond))
	fmt.Printf("  %-28s %12v\n", "anonymize (postprocessor)", res.Anonymize.Round(time.Microsecond))
	fmt.Println("\nshape check: rewrite+fragment are microseconds — negligible against execution.")
}

func figure3() {
	header("Figure 3 — vertical fragmentation: data leaving the apartment")
	sizes := []int{5_000, 20_000, 100_000}
	rows, err := experiments.Figure3(sizes, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %14s %14s %14s %10s %14s %14s\n",
		"rows |d|", "raw bytes", "naive egress", "frag egress", "reduction", "naive time", "frag time")
	for _, r := range rows {
		fmt.Printf("%10d %14d %14d %14d %9.0fx %14v %14v\n",
			r.Rows, r.RawBytes, r.NaiveEgress, r.FragEgress, r.Reduction,
			r.NaiveSimTime.Round(time.Millisecond), r.FragSimTime.Round(time.Millisecond))
	}

	fmt.Println("\nfragmentation-granularity ablation (10k rows):")
	ladder, err := experiments.Figure3Ladder(10_000, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range ladder {
		fmt.Printf("  %-44s egress %12d bytes\n", l.Description, l.EgressBytes)
	}

	fmt.Println("\nsensor fan-in (Table 1 node counts; 20k rows spread over N sensors):")
	fan, err := experiments.Figure3FanIn(20_000, []int{1, 10, 100}, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fan {
		fmt.Printf("  %4d sensors: egress %8d bytes, simulated time %12v\n",
			f.Sensors, f.EgressBytes, f.SimTime.Round(time.Millisecond))
	}
}

func figure4(n int) {
	header("Figure 4 — privacy policy and its rewriting effect")
	res, err := experiments.Figure4(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy (as parsed and re-marshalled):")
	fmt.Println(res.PolicyXML)
	fmt.Printf("\noriginal : %s\n", res.OriginalSQL)
	fmt.Printf("rewritten: %s\n", res.RewrittenSQL)
	fmt.Printf("rewrite time: %v\n", res.RewriteTime.Round(time.Microsecond))
	if res.MatchesPaper {
		fmt.Println("matches the published §4.2 transformation: YES")
	} else {
		fmt.Println("MISMATCH against the published transformation:")
		for _, p := range res.Problems {
			fmt.Println("  - " + p)
		}
		os.Exit(1)
	}
}

func usecase(n int) {
	header("§4.2 — staged pushdown across the peer chain")
	res, err := experiments.UseCase(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Stages {
		match := "n/a"
		if s.PaperSQL != "" {
			if s.Match {
				match = "matches paper"
			} else {
				match = "MISMATCH"
			}
		}
		fmt.Printf("Q%d @ %-12s (%s) [%s]\n", s.Stage, s.Node, s.Level, match)
		if s.PaperSQL != "" {
			fmt.Printf("   paper: %s\n", s.PaperSQL)
		}
		fmt.Printf("   ours : %s\n", s.OurSQL)
	}
	fmt.Printf("\ncloud residual: %s\n", res.CloudResidual)
	fmt.Printf("fragmented == monolithic execution: %v\n", res.Equivalent)
	if !res.Equivalent {
		os.Exit(1)
	}
}

func sec32(n int) {
	header("§3.2 — information loss vs privacy (Golden Path)")
	rows, err := experiments.Sec32(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-10s %10s %12s %12s %12s %10s %12s\n",
		"method", "param", "DD-ratio", "KL intended", "risk before", "risk after", "avg class", "elapsed")
	for _, r := range rows {
		fmt.Printf("%-12s %-10s %10.3f %12.4f %12.3f %12.3f %10.1f %12v\n",
			r.Method, r.Param, r.DDRatio, r.KLIntended, r.RiskBefore, r.RiskAfter, r.AvgClass,
			r.Elapsed.Round(10*time.Microsecond))
	}
	fmt.Println("\nshape check: class size grows with k and risk falls to 0; KL shrinks as")
	fmt.Println("epsilon grows; slicing preserves marginals (KL ~ 0) while breaking linkage.")
}

func openproblem(n int) {
	header("§4.1/§5 open problem — can Q↓ still run on d'?")
	rows, err := experiments.OpenProblem(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("released view: SELECT x, y, AVG(z) AS zavg, t FROM d WHERE x > y AND z < 2")
	fmt.Println("               GROUP BY x, y HAVING SUM(z) > 100")
	fmt.Println()
	for _, r := range rows {
		status := "blocked   "
		if r.Answerable {
			status = "ANSWERABLE"
		}
		fmt.Printf("  [%-9s] %s %s\n", r.Intent, status, r.Query)
		fmt.Printf("               %s\n", r.Reason)
	}
	fmt.Println("\nshape check: intended analyses survive; every profiling query is blocked,")
	fmt.Println("conservatively (the checker over-approximates the attacker).")
}

func goldenpath() {
	header("§3.2 Golden Path — intended-analysis quality under privacy processing")
	rows, err := experiments.GoldenPath(60*time.Second, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %12s %14s %10s\n", "variant", "accuracy", "fall detected", "DD-ratio")
	for _, r := range rows {
		fmt.Printf("%-24s %11.1f%% %14v %10.3f\n",
			r.Variant, r.Accuracy*100, r.FallDetected, r.DDRatio)
	}
	fmt.Println("\nshape check: mild processing (compression, eps=1 DP, k=5) keeps the")
	fmt.Println("intended recognition usable and the fall detectable; aggressive settings")
	fmt.Println("trade increasing accuracy for privacy — the Golden Path is a dial.")
}

func ablations(n int) {
	header("Ablation — condition placement (innermost vs outermost)")
	place, err := experiments.AblationConditionPlacement(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range place {
		fmt.Printf("  %-26s egress %10d bytes, sensor ships %d rows\n",
			p.Placement, p.EgressBytes, p.SensorOut)
	}

	header("Ablation — §3.2 weak-node fallback")
	fb, err := experiments.AblationWeakNode(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fb {
		fmt.Printf("  %-28s egress %10d bytes, appliance->mediacenter %10d bytes, fallback=%v\n",
			f.Config, f.EgressBytes, f.MidLinkBytes, f.FallbackUsed)
	}
	fmt.Println("\nshape check: the fallback ships raw data one hop further; the final egress")
	fmt.Println("is unchanged because anonymization still happens before the boundary.")
}
