// Command paradise is the CLI front end of the privacy-aware query
// processor: it loads (or simulates) a smart-environment database, applies a
// privacy policy to a SQL query, prints the rewrite, the vertical fragment
// plan and the simulated chain execution, and optionally anonymizes the
// result.
//
// Usage:
//
//	paradise -query "SELECT x, y, z, t FROM d" [flags]
//
// Flags:
//
//	-query     SQL query to process (required)
//	-module    policy module to apply (default ActionFilter)
//	-policy    path to a policy XML file (default: the paper's Figure 4)
//	-scenario  apartment | meeting | lecture (default apartment)
//	-duration  simulated trace duration (default 60s)
//	-seed      simulation seed (default 2016)
//	-anon      none | mondrian | fulldomain | slicing | dp (default none)
//	-k         k for the k-anonymity methods (default 5)
//	-epsilon   epsilon for dp (default 1.0)
//	-rows      print up to N result rows (default 10)
//	-parallel  worker goroutines per query pipeline
//	           (default 0 = all CPUs; 1 = serial)
//	-explain   print the optimized logical plan (with policy provenance)
//	           and the per-fragment plan trees with modeled sizes
//	-fixed-placement  run every fragment at its MinLevel floor instead of
//	           the cost-based placement search
//	-reorder-joins    reorder inner equi-join clusters by modeled
//	           intermediate size (smallest first)
//	-audit     violating query to check against the released d'
//	-journal   write the audit journal as JSON to this file
//
// Exit codes: 0 success, 2 usage error, 3 SQL parse error, 4 policy
// violation, 1 any other failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	paradise "paradise"
	"paradise/sensorsim"
)

// Exit codes, mapped from the facade's typed errors.
const (
	exitOK     = 0
	exitOther  = 1
	exitUsage  = 2
	exitParse  = 3
	exitPolicy = 4
)

func main() {
	os.Exit(run())
}

// exitCode classifies an error into the documented exit codes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, paradise.ErrUsage):
		return exitUsage
	case errors.Is(err, paradise.ErrParse):
		return exitParse
	case errors.Is(err, paradise.ErrPolicyViolation):
		return exitPolicy
	default:
		return exitOther
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return exitCode(err)
}

func run() int {
	var (
		query    = flag.String("query", "", "SQL query to process (required)")
		module   = flag.String("module", "ActionFilter", "policy module to apply")
		polPath  = flag.String("policy", "", "policy XML file (default: paper Figure 4)")
		scenario = flag.String("scenario", "apartment", "apartment | meeting | lecture")
		duration = flag.Duration("duration", 60*time.Second, "simulated trace duration")
		seed     = flag.Int64("seed", 2016, "simulation seed")
		anon     = flag.String("anon", "none", "none | mondrian | fulldomain | slicing | dp")
		k        = flag.Int("k", 5, "k for k-anonymity methods")
		epsilon  = flag.Float64("epsilon", 1.0, "epsilon for differential privacy")
		rows     = flag.Int("rows", 10, "print up to N result rows")
		parallel = flag.Int("parallel", 0, "worker goroutines per query pipeline (0 = all CPUs, 1 = serial)")
		explain  = flag.Bool("explain", false, "print the optimized logical plan and per-fragment plan trees")
		fixed    = flag.Bool("fixed-placement", false, "place every fragment at its MinLevel floor instead of the cost-based search")
		reorder  = flag.Bool("reorder-joins", false, "reorder inner equi-join clusters smallest-modeled-intermediate-first")
		auditQ   = flag.String("audit", "", "violating query to audit against the released d' (query containment)")
		journalP = flag.String("journal", "", "write the audit journal as JSON to this file")
	)
	flag.Parse()
	if *query == "" {
		flag.Usage()
		return exitUsage
	}
	ctx := context.Background()

	sc, err := buildScenario(*scenario, *duration, *seed)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", paradise.ErrUsage, err))
	}
	trace, err := sensorsim.Generate(sc)
	if err != nil {
		return fail(fmt.Errorf("generate trace: %w", err))
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		return fail(fmt.Errorf("build store: %w", err))
	}

	pol := paradise.Figure4Policy()
	if *polPath != "" {
		f, err := os.Open(*polPath)
		if err != nil {
			return fail(fmt.Errorf("open policy: %w", err))
		}
		pol, err = paradise.ParsePolicy(f)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("parse policy: %w", err))
		}
	}

	journal := paradise.NewJournal()
	sess, err := paradise.Open(store,
		paradise.WithPolicy(pol),
		paradise.WithJournal(journal),
		paradise.WithParallelism(*parallel),
		paradise.WithCostBasedPlacement(!*fixed),
		paradise.WithJoinReordering(*reorder),
		paradise.WithAnonymization(paradise.AnonConfig{
			Method:  paradise.AnonMethod(*anon),
			K:       *k,
			Epsilon: *epsilon,
			Seed:    *seed,
		}),
	)
	if err != nil {
		return fail(fmt.Errorf("open session: %w", err))
	}

	out, err := sess.Process(ctx, *query, paradise.Module(*module))
	if err != nil {
		if jerr := writeJournal(journal, *journalP); jerr != nil {
			fmt.Fprintln(os.Stderr, jerr)
		}
		return fail(fmt.Errorf("process: %w", err))
	}

	fmt.Print(out.Summary())
	fmt.Println()
	if *explain {
		fmt.Print(out.Explain())
		fmt.Println()
	}
	printResult(out, *rows)

	if *auditQ != "" {
		v, err := sess.ResidualRisk(*auditQ, out)
		if err != nil {
			return fail(fmt.Errorf("audit: %w", err))
		}
		fmt.Printf("\nresidual-risk audit of %q:\n  %s\n", *auditQ, v)
	}
	if err := writeJournal(journal, *journalP); err != nil {
		return fail(err)
	}
	return exitOK
}

func writeJournal(j *paradise.Journal, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	if err := j.WriteJSON(f); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fmt.Printf("\naudit journal (%d entries) written to %s\n", j.Len(), path)
	return nil
}

func buildScenario(name string, dur time.Duration, seed int64) (*sensorsim.Scenario, error) {
	switch name {
	case "apartment":
		sc := sensorsim.Apartment(dur, true, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	case "meeting":
		sc := sensorsim.Meeting(5, dur, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	case "lecture":
		sc := sensorsim.Lecture(8, dur, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (apartment | meeting | lecture)", name)
	}
}

func printResult(out *paradise.Outcome, limit int) {
	res := out.Result
	names := res.Schema.ColumnNames()
	fmt.Printf("result (%d rows):\n  %s\n", len(res.Rows), strings.Join(names, " | "))
	for i, r := range res.Rows {
		if i >= limit {
			fmt.Printf("  ... %d more rows\n", len(res.Rows)-limit)
			break
		}
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.Format()
		}
		fmt.Println("  " + strings.Join(vals, " | "))
	}
}
