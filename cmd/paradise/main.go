// Command paradise is the CLI front end of the privacy-aware query
// processor: it loads (or simulates) a smart-environment database, applies a
// privacy policy to a SQL query, prints the rewrite, the vertical fragment
// plan and the simulated chain execution, and optionally anonymizes the
// result.
//
// Usage:
//
//	paradise -query "SELECT x, y, z, t FROM d" [flags]
//
// Flags:
//
//	-query     SQL query to process (required)
//	-module    policy module to apply (default ActionFilter)
//	-policy    path to a policy XML file (default: the paper's Figure 4)
//	-scenario  apartment | meeting | lecture (default apartment)
//	-duration  simulated trace duration (default 60s)
//	-seed      simulation seed (default 2016)
//	-anon      none | mondrian | fulldomain | slicing | dp (default none)
//	-k         k for the k-anonymity methods (default 5)
//	-epsilon   epsilon for dp (default 1.0)
//	-rows      print up to N result rows (default 10)
//	-audit     violating query to check against the released d'
//	-journal   write the audit journal as JSON to this file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"paradise/internal/audit"
	"paradise/internal/core"
	"paradise/internal/policy"
	"paradise/internal/sensors"
)

func main() {
	log.SetFlags(0)
	var (
		query    = flag.String("query", "", "SQL query to process (required)")
		module   = flag.String("module", "ActionFilter", "policy module to apply")
		polPath  = flag.String("policy", "", "policy XML file (default: paper Figure 4)")
		scenario = flag.String("scenario", "apartment", "apartment | meeting | lecture")
		duration = flag.Duration("duration", 60*time.Second, "simulated trace duration")
		seed     = flag.Int64("seed", 2016, "simulation seed")
		anon     = flag.String("anon", "none", "none | mondrian | fulldomain | slicing | dp")
		k        = flag.Int("k", 5, "k for k-anonymity methods")
		epsilon  = flag.Float64("epsilon", 1.0, "epsilon for differential privacy")
		rows     = flag.Int("rows", 10, "print up to N result rows")
		auditQ   = flag.String("audit", "", "violating query to audit against the released d' (query containment)")
		journalP = flag.String("journal", "", "write the audit journal as JSON to this file")
	)
	flag.Parse()
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}

	sc, err := buildScenario(*scenario, *duration, *seed)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sensors.Generate(sc)
	if err != nil {
		log.Fatalf("generate trace: %v", err)
	}
	store, err := sensors.BuildStore(trace)
	if err != nil {
		log.Fatalf("build store: %v", err)
	}

	pol := policy.Figure4()
	if *polPath != "" {
		f, err := os.Open(*polPath)
		if err != nil {
			log.Fatalf("open policy: %v", err)
		}
		pol, err = policy.Parse(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse policy: %v", err)
		}
	}

	journal := audit.NewJournal()
	proc, err := core.New(core.Config{
		Store:  store,
		Policy: pol,
		Anon: core.AnonConfig{
			Method:  core.AnonMethod(*anon),
			K:       *k,
			Epsilon: *epsilon,
			Seed:    *seed,
		},
		Journal: journal,
	})
	if err != nil {
		log.Fatalf("processor: %v", err)
	}

	out, err := proc.Process(*query, *module)
	if err != nil {
		writeJournal(journal, *journalP)
		log.Fatalf("process: %v", err)
	}

	fmt.Print(out.Summary())
	fmt.Println()
	printResult(out, *rows)

	if *auditQ != "" {
		v, err := proc.ResidualRisk(*auditQ, out)
		if err != nil {
			log.Fatalf("audit: %v", err)
		}
		fmt.Printf("\nresidual-risk audit of %q:\n  %s\n", *auditQ, v)
	}
	writeJournal(journal, *journalP)
}

func writeJournal(j *audit.Journal, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("journal: %v", err)
	}
	defer f.Close()
	if err := j.WriteJSON(f); err != nil {
		log.Fatalf("journal: %v", err)
	}
	fmt.Printf("\naudit journal (%d entries) written to %s\n", j.Len(), path)
}

func buildScenario(name string, dur time.Duration, seed int64) (*sensors.Scenario, error) {
	switch name {
	case "apartment":
		sc := sensors.Apartment(dur, true, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	case "meeting":
		sc := sensors.Meeting(5, dur, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	case "lecture":
		sc := sensors.Lecture(8, dur, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (apartment | meeting | lecture)", name)
	}
}

func printResult(out *core.Outcome, limit int) {
	res := out.Result
	names := res.Schema.ColumnNames()
	fmt.Printf("result (%d rows):\n  %s\n", len(res.Rows), strings.Join(names, " | "))
	for i, r := range res.Rows {
		if i >= limit {
			fmt.Printf("  ... %d more rows\n", len(res.Rows)-limit)
			break
		}
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.Format()
		}
		fmt.Println("  " + strings.Join(vals, " | "))
	}
}
