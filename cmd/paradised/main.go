// Command paradised serves the privacy-aware query processor over HTTP:
// it loads a simulated smart-environment database and exposes it through
// the server package's NDJSON streaming API.
//
// Two tenants are served from the one store: "default", governed by the
// privacy policy (the paper's Figure 4 unless -policy names a file), and
// "open", unrestricted — useful for comparing the policy-mandated rewrite
// against the raw answer. All tenants share one prepared-plan cache.
//
// Usage:
//
//	paradised [flags]
//
// Flags:
//
//	-addr      listen address (default :8780; use :0 for an ephemeral port —
//	           the actual address is printed on startup)
//	-scenario  apartment | meeting | lecture (default apartment)
//	-duration  simulated trace duration (default 60s)
//	-seed      simulation seed (default 2016)
//	-policy    path to a policy XML file (default: the paper's Figure 4)
//	-module    default policy module for the "default" tenant (default ActionFilter)
//	-parallel  worker goroutines per query pipeline (0 = all CPUs)
//	-cache     prepared-plan cache capacity (0 = library default)
//	-max-query execution ceiling per request (default 30s; 0 = none)
//	-drain     grace period for in-flight queries on shutdown (default 5s)
//	-journal   write the default tenant's audit journal as JSON to this
//	           file on shutdown
//	-data      serve a persisted disk-backed store directory (as written
//	           by gensensors) instead of simulating a scenario; sealed
//	           segments are recovered from their footers and column data
//	           is read lazily per scan
//
// SIGINT/SIGTERM drain the server: new queries get 503 immediately,
// in-flight streams finish within -drain and are then truncated with a
// final NDJSON error line, the journal is written, and a last stats line
// is logged.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	paradise "paradise"
	"paradise/sensorsim"
	"paradise/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8780", "listen address (:0 for an ephemeral port)")
		scenario = flag.String("scenario", "apartment", "apartment | meeting | lecture")
		duration = flag.Duration("duration", 60*time.Second, "simulated trace duration")
		seed     = flag.Int64("seed", 2016, "simulation seed")
		polPath  = flag.String("policy", "", "policy XML file (default: paper Figure 4)")
		module   = flag.String("module", "ActionFilter", "default policy module for the default tenant")
		parallel = flag.Int("parallel", 0, "worker goroutines per query pipeline (0 = all CPUs)")
		cacheSz  = flag.Int("cache", 0, "prepared-plan cache capacity (0 = library default)")
		maxQuery = flag.Duration("max-query", 30*time.Second, "execution ceiling per request (0 = none)")
		drain    = flag.Duration("drain", 5*time.Second, "shutdown grace period for in-flight queries")
		journalP = flag.String("journal", "", "write the default tenant's audit journal to this file on shutdown")
		dataDir  = flag.String("data", "", "serve a persisted disk-backed store (e.g. from gensensors) instead of simulating")
	)
	flag.Parse()

	var store *paradise.Store
	if *dataDir != "" {
		var err error
		store, err = paradise.NewStoreWith(paradise.StoreConfig{Dir: *dataDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "open data dir:", err)
			return 1
		}
	} else {
		sc, err := buildScenario(*scenario, *duration, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		trace, err := sensorsim.Generate(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generate trace:", err)
			return 1
		}
		store, err = sensorsim.BuildStore(trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "build store:", err)
			return 1
		}
	}

	pol := paradise.Figure4Policy()
	if *polPath != "" {
		f, err := os.Open(*polPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "open policy:", err)
			return 2
		}
		pol, err = paradise.ParsePolicy(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "parse policy:", err)
			return 2
		}
	}

	journal := paradise.NewJournal()
	srv, err := server.New(server.Config{
		Store: store,
		Tenants: []server.TenantConfig{
			{Name: "default", Policy: pol, DefaultModule: *module, Journal: journal},
			{Name: "open"},
		},
		PlanCacheSize:    *cacheSz,
		Parallelism:      *parallel,
		MaxQueryDuration: *maxQuery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		return 1
	}
	fmt.Printf("paradised listening on http://%s (tenants: default, open)\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: refuse new queries, give in-flight streams the grace period,
	// then truncate them; finally close the listener and write the journal.
	fmt.Println("paradised draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Printf("drain deadline expired, in-flight streams truncated (%v)\n", err)
	}
	closeCtx, cancelClose := context.WithTimeout(context.Background(), time.Second)
	defer cancelClose()
	hs.Shutdown(closeCtx)

	if *journalP != "" {
		f, err := os.Create(*journalP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
			return 1
		}
		werr := journal.WriteJSON(f)
		f.Close()
		if werr != nil {
			fmt.Fprintln(os.Stderr, "journal:", werr)
			return 1
		}
		fmt.Printf("audit journal (%d entries) written to %s\n", journal.Len(), *journalP)
	}

	stats, _ := json.Marshal(srv.Stats())
	fmt.Printf("final stats: %s\n", stats)
	return 0
}

// buildScenario mirrors the cmd/paradise scenario presets so the served
// database matches the CLI's.
func buildScenario(name string, dur time.Duration, seed int64) (*sensorsim.Scenario, error) {
	switch name {
	case "apartment":
		sc := sensorsim.Apartment(dur, true, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	case "meeting":
		sc := sensorsim.Meeting(5, dur, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	case "lecture":
		sc := sensorsim.Lecture(8, dur, seed)
		sc.PositionGridM = 0.25
		return sc, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (apartment | meeting | lecture)", name)
	}
}
