// Command smartlab generates deterministic smart-environment sensor traces
// (the simulated Smart Appliance Lab of §1) and writes them out as one CSV
// per device family plus the integrated database d.
//
// Usage:
//
//	smartlab -scenario meeting -duration 60s -seed 7 -out ./trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	paradise "paradise"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)
	var (
		scenario = flag.String("scenario", "meeting", "meeting | apartment | apartment-fall | lecture")
		duration = flag.Duration("duration", 60*time.Second, "trace duration")
		persons  = flag.Int("persons", 4, "participants (meeting/lecture)")
		seed     = flag.Int64("seed", 2016, "simulation seed")
		grid     = flag.Float64("grid", 0, "position grid in metres (0 = exact)")
		out      = flag.String("out", "trace", "output directory")
	)
	flag.Parse()

	var sc *sensorsim.Scenario
	switch *scenario {
	case "meeting":
		sc = sensorsim.Meeting(*persons, *duration, *seed)
	case "apartment":
		sc = sensorsim.Apartment(*duration, false, *seed)
	case "apartment-fall":
		sc = sensorsim.Apartment(*duration, true, *seed)
	case "lecture":
		sc = sensorsim.Lecture(*persons, *duration, *seed)
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	sc.PositionGridM = *grid

	trace, err := sensorsim.Generate(sc)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}

	total := 0
	for _, dev := range sensorsim.AllDevices {
		rel := sensorsim.DeviceSchema(dev)
		rows := trace.Device[dev]
		path := filepath.Join(*out, string(dev)+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("create %s: %v", path, err)
		}
		if err := paradise.WriteCSV(f, rel, rows); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		f.Close()
		fmt.Printf("%-14s %7d rows -> %s\n", dev, len(rows), path)
		total += len(rows)
	}

	dPath := filepath.Join(*out, "d.csv")
	f, err := os.Create(dPath)
	if err != nil {
		log.Fatalf("create %s: %v", dPath, err)
	}
	if err := paradise.WriteCSV(f, sensorsim.IntegratedSchema(), trace.Integrated); err != nil {
		log.Fatalf("write %s: %v", dPath, err)
	}
	f.Close()
	fmt.Printf("%-14s %7d rows -> %s\n", "d (integrated)", len(trace.Integrated), dPath)

	fmt.Printf("\nground truth intervals: %d, total device rows: %d\n", len(trace.Truth), total)
}
