// Command loadgen drives a running paradised server with a concurrent
// query mix and reports latency percentiles and throughput.
//
// Each worker loops over the query mix round-robin (offset by worker
// index so the statements interleave), posts to /v1/query, and drains the
// full NDJSON stream; a query's latency is the time from request to the
// stats trailer. At the end loadgen fetches /v1/stats and emits one JSON
// record — configuration, latency distribution (mean/p50/p95/p99/max),
// throughput, error counts by code, and the server's own counters
// (plan-cache hit rate included) — to -out or stdout.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8780 [flags]
//
// Flags:
//
//	-addr        server base URL (required)
//	-tenant      tenant to query (default "default")
//	-module      policy module override (default: tenant's default)
//	-concurrency concurrent workers (default 8)
//	-duration    how long to generate load (default 10s)
//	-queries     semicolon-separated query mix (default: a representative
//	             projection / filter / aggregation mix)
//	-timeout     per-query timeout (default 30s)
//	-out         write the JSON record to this file (default stdout)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"paradise/server"
)

// defaultMix exercises the three plan shapes the engine serves most:
// plain projection, selective filter, and grouped aggregation.
const defaultMix = "SELECT x, y, z FROM d; " +
	"SELECT x, y, z FROM d WHERE x > y AND z < 2; " +
	"SELECT x, AVG(z) AS za FROM d GROUP BY x"

// sample is one completed query.
type sample struct {
	latency time.Duration
	rows    int
	errCode string
}

// Record is the JSON document loadgen emits.
type Record struct {
	Benchmark string         `json:"benchmark"`
	Config    RunConfig      `json:"config"`
	Results   RunResults     `json:"results"`
	Server    map[string]any `json:"server_stats,omitempty"`
}

// RunConfig echoes the generator settings.
type RunConfig struct {
	Addr        string   `json:"addr"`
	Tenant      string   `json:"tenant"`
	Concurrency int      `json:"concurrency"`
	DurationS   float64  `json:"duration_s"`
	Queries     []string `json:"queries"`
}

// RunResults aggregates the samples.
type RunResults struct {
	QueriesTotal int            `json:"queries_total"`
	ErrorsTotal  int            `json:"errors_total"`
	ErrorsByCode map[string]int `json:"errors_by_code,omitempty"`
	RowsTotal    int64          `json:"rows_total"`
	ThroughputQ  float64        `json:"throughput_qps"`
	LatencyMs    LatencyMs      `json:"latency_ms"`
}

// LatencyMs is the latency distribution in milliseconds.
type LatencyMs struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "", "server base URL, e.g. http://127.0.0.1:8780 (required)")
		tenant      = flag.String("tenant", "default", "tenant to query")
		module      = flag.String("module", "", "policy module override")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		queriesFlag = flag.String("queries", defaultMix, "semicolon-separated query mix")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-query timeout")
		out         = flag.String("out", "", "write the JSON record to this file (default stdout)")
	)
	flag.Parse()
	if *addr == "" {
		flag.Usage()
		return 2
	}
	var queries []string
	for _, q := range strings.Split(*queriesFlag, ";") {
		if q = strings.TrimSpace(q); q != "" {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: empty query mix")
		return 2
	}
	if *concurrency < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: concurrency must be >= 1")
		return 2
	}

	client := &server.Client{Base: *addr}
	ctx := context.Background()

	// One warm-up probe: fail fast on an unreachable or misconfigured
	// server instead of producing a record full of identical errors.
	probeCtx, cancelProbe := context.WithTimeout(ctx, *timeout)
	probe, err := client.Query(probeCtx, server.QueryRequest{
		Tenant: *tenant, SQL: queries[0], Module: *module,
	})
	cancelProbe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: probe:", err)
		return 1
	}
	if probe.Err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: probe query failed: %s: %s\n", probe.Err.Code, probe.Err.Message)
		return 1
	}

	deadline := time.Now().Add(*duration)
	perWorker := make([][]sample, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				sql := queries[i%len(queries)]
				qctx, cancel := context.WithTimeout(ctx, *timeout)
				t0 := time.Now()
				res, err := client.Query(qctx, server.QueryRequest{
					Tenant: *tenant, SQL: sql, Module: *module,
				})
				lat := time.Since(t0)
				cancel()
				s := sample{latency: lat}
				switch {
				case err != nil:
					s.errCode = "transport"
				case res.Err != nil:
					s.errCode = res.Err.Code
				default:
					s.rows = len(res.Rows)
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var samples []sample
	for _, ws := range perWorker {
		samples = append(samples, ws...)
	}
	rec := Record{
		Benchmark: "serving-layer-loadgen",
		Config: RunConfig{
			Addr: *addr, Tenant: *tenant, Concurrency: *concurrency,
			DurationS: duration.Seconds(), Queries: queries,
		},
		Results: summarize(samples, elapsed),
	}
	if st, err := client.ServerStats(ctx); err == nil {
		// Round-trip through JSON so the record embeds the server's own
		// counters without a type dependency on its wire struct.
		if b, err := json.Marshal(st); err == nil {
			var m map[string]any
			if json.Unmarshal(b, &m) == nil {
				rec.Server = m
			}
		}
	}

	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return 0
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	fmt.Printf("loadgen: %d queries (%d errors), %.1f q/s, p95 %.2f ms -> %s\n",
		rec.Results.QueriesTotal, rec.Results.ErrorsTotal,
		rec.Results.ThroughputQ, rec.Results.LatencyMs.P95, *out)
	return 0
}

// summarize folds the samples into the reported distribution.
func summarize(samples []sample, elapsed time.Duration) RunResults {
	res := RunResults{QueriesTotal: len(samples)}
	if len(samples) == 0 {
		return res
	}
	lats := make([]float64, 0, len(samples))
	var sum float64
	for _, s := range samples {
		if s.errCode != "" {
			res.ErrorsTotal++
			if res.ErrorsByCode == nil {
				res.ErrorsByCode = make(map[string]int)
			}
			res.ErrorsByCode[s.errCode]++
			continue
		}
		res.RowsTotal += int64(s.rows)
		ms := float64(s.latency) / float64(time.Millisecond)
		lats = append(lats, ms)
		sum += ms
	}
	if elapsed > 0 {
		res.ThroughputQ = float64(len(samples)-res.ErrorsTotal) / elapsed.Seconds()
	}
	if len(lats) == 0 {
		return res
	}
	sort.Float64s(lats)
	res.LatencyMs = LatencyMs{
		Mean: sum / float64(len(lats)),
		P50:  percentile(lats, 0.50),
		P95:  percentile(lats, 0.95),
		P99:  percentile(lats, 0.99),
		Max:  lats[len(lats)-1],
	}
	return res
}

// percentile reads the q-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
