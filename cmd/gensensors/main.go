// Command gensensors generates a city-scale sensor-reading corpus and
// persists it as a disk-backed paradise store, so benchmarks and the
// network simulator can run against data volumes that do not fit a test
// fixture (the uniset gen-*-data pattern).
//
// The corpus is one table, readings(sensor_id, t, temperature, humidity,
// battery, status) with t in Unix milliseconds (the repository's sensor
// convention): every sensor reports once per -interval across -history,
// and rows are appended in strict time order — exactly the
// arrival order of a real ingest — so sealed segments carry tight,
// non-overlapping time zone maps and selective time-range scans prune
// almost everything.
//
// Generation is deterministic: a fixed epoch (2016-01-01T00:00:00Z, the
// paper's year) plus -seed fully determine every row, so two runs with the
// same flags produce byte-identical stores.
//
// Usage:
//
//	gensensors -out DIR [flags]
//
// Flags:
//
//	-out       destination directory for the disk-backed store (required)
//	-sensors   number of sensors (default 1000)
//	-history   reading history per sensor (default 1h)
//	-interval  reporting interval per sensor (default 60s)
//	-batch     rows per Append call (default 4096)
//	-segment   rows per sealed segment (default 4096)
//	-seed      generator seed (default 2016)
//
// The generated store is recovered with paradise.NewStoreWith(Dir: DIR) or
// served directly with paradised -data DIR.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	paradise "paradise"
)

// genEpoch anchors every generated timestamp: fixed so runs are
// reproducible without a wall-clock dependency.
var genEpoch = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

var statuses = []string{"ok", "ok", "ok", "ok", "degraded", "calibrating"}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out      = flag.String("out", "", "destination directory for the disk-backed store (required)")
		sensors  = flag.Int("sensors", 1000, "number of sensors")
		history  = flag.Duration("history", time.Hour, "reading history per sensor")
		interval = flag.Duration("interval", time.Minute, "reporting interval per sensor")
		batch    = flag.Int("batch", 4096, "rows per Append call")
		segment  = flag.Int("segment", 0, "rows per sealed segment (0 = default 4096)")
		seed     = flag.Int64("seed", 2016, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gensensors: -out is required")
		return 2
	}
	if *sensors <= 0 || *interval <= 0 || *history < *interval {
		fmt.Fprintln(os.Stderr, "gensensors: need sensors > 0 and history >= interval > 0")
		return 2
	}
	if *batch <= 0 {
		*batch = 4096
	}

	store, err := paradise.NewStoreWith(paradise.StoreConfig{Dir: *out, SegmentRows: *segment})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gensensors:", err)
		return 1
	}
	start := time.Now()
	n, err := generate(store, *sensors, *history, *interval, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gensensors:", err)
		return 1
	}
	st := store.StorageStats()
	fmt.Printf("gensensors: wrote %d rows (%d sensors × %d ticks) in %d segments (%d wire bytes) to %s in %v\n",
		n, *sensors, int(*history / *interval), st.Segments, st.SealedBytes, *out, time.Since(start).Round(time.Millisecond))
	return 0
}

// readingsSchema is the generated relation. sensor_id is the only
// sensitive column, so generated policies behave sensibly over the corpus.
func readingsSchema() *paradise.Relation {
	return paradise.NewRelation("readings",
		paradise.SensitiveCol("sensor_id", paradise.TypeInt),
		paradise.Col("t", paradise.TypeInt),
		paradise.Col("temperature", paradise.TypeFloat),
		paradise.Col("humidity", paradise.TypeFloat),
		paradise.Col("battery", paradise.TypeFloat),
		paradise.Col("status", paradise.TypeString),
	)
}

// generate appends sensors×ticks readings in strict time order and flushes
// the final partial segment so the store recovers complete.
func generate(store *paradise.Store, sensors int, history, interval time.Duration, batch int, seed int64) (int, error) {
	tab, err := store.CreateTable(readingsSchema())
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Per-sensor baselines: stable temperature/humidity offsets so values
	// correlate with sensor identity, plus a battery that drains over time.
	baseTemp := make([]float64, sensors)
	baseHum := make([]float64, sensors)
	for i := range baseTemp {
		baseTemp[i] = 14 + 12*rng.Float64()
		baseHum[i] = 30 + 40*rng.Float64()
	}
	ticks := int(history / interval)
	total := 0
	rows := make([]paradise.Row, 0, batch)
	flushRows := func() error {
		if len(rows) == 0 {
			return nil
		}
		if err := tab.Append(rows...); err != nil {
			return err
		}
		total += len(rows)
		rows = rows[:0]
		return nil
	}
	for tick := 0; tick < ticks; tick++ {
		at := genEpoch.Add(time.Duration(tick) * interval).UnixMilli()
		drain := float64(tick) / float64(ticks)
		for s := 0; s < sensors; s++ {
			temp := baseTemp[s] + 2*rng.NormFloat64()
			hum := baseHum[s] + 5*rng.NormFloat64()
			batt := 100 - 60*drain - 5*rng.Float64()
			status := statuses[rng.Intn(len(statuses))]
			rows = append(rows, paradise.Row{
				paradise.Int(int64(s)),
				paradise.Int(at),
				paradise.Float(round2(temp)),
				paradise.Float(round2(hum)),
				paradise.Float(round2(batt)),
				paradise.String(status),
			})
			if len(rows) == batch {
				if err := flushRows(); err != nil {
					return total, err
				}
			}
		}
	}
	if err := flushRows(); err != nil {
		return total, err
	}
	if err := store.Flush(); err != nil {
		return total, err
	}
	return total, nil
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }
