// Audit demonstrates the open problem the paper closes with (§4.1/§5):
// after the privacy rewrite releases d′, can a privacy-violating query Q↓
// still be answered from it? The conservative containment checker decides;
// when a violating query survives, the anonymization step A must be
// extended — here by adding k-anonymity in the postprocessor and checking
// the linkage risk before and after.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	paradise "paradise"
	"paradise/privmetrics"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	scenario := sensorsim.Apartment(600*time.Second, false, 11)
	scenario.PositionGridM = 0.25 // UbiSense cell grid; see quickstart
	trace, err := sensorsim.Generate(scenario)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		log.Fatalf("store: %v", err)
	}

	sess, err := paradise.Open(store, paradise.WithPolicy(paradise.Figure4Policy()))
	if err != nil {
		log.Fatalf("open session: %v", err)
	}

	// The provider's query, processed under the Figure 4 policy.
	out, err := sess.Process(ctx,
		"SELECT x, y, z, t, regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) AS trend FROM (SELECT x, y, z, t FROM d)",
		paradise.Module("ActionFilter"))
	if err != nil {
		log.Fatalf("process: %v", err)
	}
	fmt.Println("released view d' =")
	fmt.Println("  " + out.RewrittenSQL)
	fmt.Println()

	// Audit a battery of attacker queries against the release.
	attacks := []struct {
		what, sql string
		violating bool
	}{
		{"identity profile", "SELECT user, x, y, t FROM d", true},
		{"raw height trajectory", "SELECT z, t FROM d WHERE x > y AND z < 2", true},
		{"full movement trace", "SELECT x, y, t FROM d", true},
		{"night-time positions", "SELECT x, y FROM d WHERE t > 100000", true},
		{"intended cell analysis", "SELECT x, y, zavg FROM d WHERE x > y AND z < 2", false},
	}
	fmt.Println("residual-risk audit (query containment, conservative):")
	for _, a := range attacks {
		v, err := sess.ResidualRisk(a.sql, out)
		if err != nil {
			log.Fatalf("audit %q: %v", a.what, err)
		}
		var status string
		switch {
		case v.Answerable && a.violating:
			status = "ANSWERABLE -> extend anonymization A"
		case v.Answerable:
			status = "answerable (intended analysis preserved)"
		case a.violating:
			status = "blocked"
		default:
			status = "blocked (utility lost!)"
		}
		fmt.Printf("  %-26s %s\n", a.what, status)
	}
	fmt.Println()

	qi := []string{"x", "y"}
	risk, err := privmetrics.LinkageRisk(out.Result.Schema, out.Result.Rows, qi)
	if err != nil {
		log.Fatalf("risk: %v", err)
	}
	fmt.Printf("released d' under the strict ActionFilter policy: %d aggregate cells,\n", len(out.Result.Rows))
	fmt.Printf("linkage risk over QI %v: %.3f — cells are aggregates of many samples;\n", qi, risk)
	fmt.Println("the HAVING safeguard already guarantees each cell hides >= 70 readings.")
	fmt.Println()

	// Contrast: a permissive module (only the identity denied) releases
	// per-sample positions. The audit flags the movement trace as
	// answerable, so A must be extended — with Mondrian k-anonymity here.
	permissive := &paradise.Policy{Modules: []*paradise.PolicyModule{
		paradise.DefaultPolicyModule("Permissive", store.Catalog().MustLookup("d")),
	}}
	sessP, err := paradise.Open(store, paradise.WithPolicy(permissive))
	if err != nil {
		log.Fatalf("open session: %v", err)
	}
	outP, err := sessP.Process(ctx, "SELECT x, y, z, t FROM d", paradise.Module("Permissive"))
	if err != nil {
		log.Fatalf("process permissive: %v", err)
	}
	vp, err := sessP.ResidualRisk("SELECT x, y, t FROM d", outP)
	if err != nil {
		log.Fatalf("audit permissive: %v", err)
	}
	riskP, _ := privmetrics.LinkageRisk(outP.Result.Schema, outP.Result.Rows, qi)
	fmt.Printf("permissive module releases %d per-sample rows (linkage risk %.3f);\n",
		len(outP.Result.Rows), riskP)
	fmt.Printf("the movement-trace query %s on this d' -> anonymization A must be extended.\n",
		map[bool]string{true: "IS ANSWERABLE", false: "is blocked"}[vp.Answerable])

	sessK, err := paradise.Open(store,
		paradise.WithPolicy(permissive),
		paradise.WithAnonymization(paradise.AnonConfig{
			Method: paradise.AnonMondrian, K: 5, QuasiIdentifiers: qi,
		}),
	)
	if err != nil {
		log.Fatalf("open session: %v", err)
	}
	outK, err := sessK.Process(ctx, "SELECT x, y, z, t FROM d", paradise.Module("Permissive"))
	if err != nil {
		log.Fatalf("process with k-anonymity: %v", err)
	}
	riskK, _ := privmetrics.LinkageRisk(outK.Result.Schema, outK.Result.Rows, qi)
	fmt.Printf("after extending A with mondrian k=5: risk %.3f, DD-ratio %.3f\n",
		riskK, outK.Anon.DDRatio)
}
