// Anonymization studies the postprocessing stage (§3.2) in isolation: the
// same result set is anonymized with k-anonymity (Mondrian and full-domain),
// slicing and differential privacy, and each variant is scored with the
// paper's Direct Distance, the KL information loss for the *intended*
// analysis (coarse occupancy) and the linkage risk for the *unintended* one
// (re-identification) — the "Golden Path" trade-off.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	paradise "paradise"
	"paradise/anonymize"
	"paradise/privmetrics"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	trace, err := sensorsim.Generate(sensorsim.Meeting(6, 45*time.Second, 31))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		log.Fatalf("store: %v", err)
	}

	// An unrestricted session (no WithPolicy): the query passes through
	// untransformed, so the study isolates the postprocessor.
	sess, err := paradise.Open(store)
	if err != nil {
		log.Fatalf("open session: %v", err)
	}

	// The result set to publish: per-sample positions.
	out, err := sess.Process(ctx, "SELECT x, y, z, t FROM d")
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	res := out.Result
	qi := anonymize.DetectQuasiIdentifiers(res.Schema, res.Rows, 0.2)
	fmt.Printf("publishing %d rows; detected quasi-identifiers: %v\n\n", len(res.Rows), qi)

	rng := rand.New(rand.NewSource(5))
	fmt.Printf("%-22s %10s %10s %12s %12s\n", "method", "DD-ratio", "KL(z)", "risk before", "risk after")
	baseRisk, _ := privmetrics.LinkageRisk(res.Schema, res.Rows, qi)

	// k-anonymity (Mondrian) for several k.
	for _, k := range []int{2, 5, 10, 25} {
		anon, err := anonymize.Mondrian(res.Schema, res.Rows, qi, k)
		if err != nil {
			log.Fatalf("mondrian k=%d: %v", k, err)
		}
		ddr, _ := privmetrics.DirectDistanceRatio(res.Rows, anon)
		kl, _ := privmetrics.ColumnKL(res.Schema, res.Rows, anon, "z", 16)
		risk, _ := privmetrics.LinkageRisk(res.Schema, anon, qi)
		fmt.Printf("%-22s %10.3f %10.4f %12.3f %12.3f\n",
			fmt.Sprintf("mondrian k=%d", k), ddr, kl, baseRisk, risk)
	}

	// Full-domain generalization.
	fd, suppressed, err := anonymize.FullDomain(res.Schema, res.Rows, qi, 5, len(res.Rows)/10)
	if err != nil {
		log.Fatalf("fulldomain: %v", err)
	}
	risk, _ := privmetrics.LinkageRisk(res.Schema, fd, qi)
	fmt.Printf("%-22s %10s %10s %12.3f %12.3f  (%d rows suppressed)\n",
		"fulldomain k=5", "n/a", "n/a", baseRisk, risk, suppressed)

	// Slicing.
	sliced, err := anonymize.Slice(res.Schema, res.Rows, [][]string{qi}, 4, rng)
	if err != nil {
		log.Fatalf("slice: %v", err)
	}
	ddr, _ := privmetrics.DirectDistanceRatio(res.Rows, sliced)
	kl, _ := privmetrics.ColumnKL(res.Schema, res.Rows, sliced, "z", 16)
	fmt.Printf("%-22s %10.3f %10.4f %12s %12s\n", "slicing bucket=4", ddr, kl, "-", "-")

	// Differential privacy for several epsilon.
	for _, eps := range []float64{0.1, 1, 10} {
		noisy, err := anonymize.NoisyRows(res.Schema, res.Rows, []string{"x", "y", "z"}, 0.5, eps, rng)
		if err != nil {
			log.Fatalf("dp: %v", err)
		}
		ddr, _ := privmetrics.DirectDistanceRatio(res.Rows, noisy)
		kl, _ := privmetrics.ColumnKL(res.Schema, res.Rows, noisy, "z", 16)
		fmt.Printf("%-22s %10.3f %10.4f %12s %12s\n",
			fmt.Sprintf("dp epsilon=%.1f", eps), ddr, kl, "-", "-")
	}

	fmt.Println()
	fmt.Println("reading guide: DD-ratio and KL(z) measure utility loss (lower = better for")
	fmt.Println("the intended analysis); linkage risk measures the unintended one (lower =")
	fmt.Println("more private). k up -> more loss, less risk. epsilon down -> more noise.")
}
