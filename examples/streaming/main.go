// Streaming consumes a long-running query through the Session.Query
// cursor under a deadline: rows arrive batch-at-a-time straight from the
// fragment chain (no materialized result), and when the context expires
// the cursor stops — the underlying storage scans halt within one batch.
// It also shows that a cursor drained to completion reports exactly the
// transfer stats Process would.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	paradise "paradise"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)

	// A long trace: ten simulated minutes of apartment life.
	trace, err := sensorsim.Generate(sensorsim.Apartment(600*time.Second, false, 42))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		log.Fatalf("store: %v", err)
	}
	sess, err := paradise.Open(store) // unrestricted: study the cursor itself
	if err != nil {
		log.Fatalf("open session: %v", err)
	}
	fmt.Printf("database d: %d rows\n\n", len(trace.Integrated))

	const sql = "SELECT x, y, z, t FROM d WHERE z < 2"

	// --- 1. Stream under a deadline. ---
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()

	cur, err := sess.Query(ctx, sql)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	rows := 0
	for cur.Next() {
		rows++
		if rows <= 3 {
			r := cur.Row()
			fmt.Printf("  row %d: x=%s y=%s z=%s\n", rows, r[0].Format(), r[1].Format(), r[2].Format())
		}
		// A slow consumer: the deadline expires mid-stream.
		time.Sleep(200 * time.Microsecond)
	}
	cur.Close()
	fmt.Printf("consumed %d rows before the deadline\n", rows)
	if errors.Is(cur.Err(), context.DeadlineExceeded) {
		fmt.Println("cursor stopped: context deadline exceeded (storage scans halted)")
	} else if cur.Err() != nil {
		log.Fatalf("cursor: %v", cur.Err())
	} else {
		fmt.Println("(fast machine: the stream finished before the deadline)")
	}
	fmt.Println()

	// --- 2. Drain without a deadline: cursor == Process, stats included. ---
	cur2, err := sess.Query(context.Background(), sql)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	drained := 0
	for cur2.Next() {
		drained++
	}
	if err := cur2.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	stats, err := cur2.Stats()
	if err != nil {
		log.Fatalf("stats: %v", err)
	}

	out, err := sess.Process(context.Background(), sql)
	if err != nil {
		log.Fatalf("process: %v", err)
	}
	fmt.Printf("full drain: %d rows (Process: %d)\n", drained, len(out.Result.Rows))
	fmt.Printf("cursor egress %d bytes == process egress %d bytes: %v\n",
		stats.EgressBytes, out.Net.EgressBytes, stats.EgressBytes == out.Net.EgressBytes)
}
