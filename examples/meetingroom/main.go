// Meetingroom reproduces the Smart Meeting Room setting of §1 through the
// public facade: the full device ensemble generates a meeting trace; the
// automatic policy generator derives default privacy modules for every
// device; and the room's intention-recognition queries run through the
// privacy-aware processor, including a policy-tripping tracking attempt
// that surfaces as a typed paradise.ErrPolicyViolation.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	paradise "paradise"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. A meeting with five participants in the instrumented room.
	trace, err := sensorsim.Generate(sensorsim.Meeting(5, 60*time.Second, 99))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		log.Fatalf("store: %v", err)
	}

	fmt.Println("Smart Meeting Room trace (per device):")
	for _, dev := range sensorsim.AllDevices {
		fmt.Printf("  %-13s %6d rows\n", dev, len(trace.Device[dev]))
	}
	fmt.Printf("  %-13s %6d rows (integrated)\n\n", "d", len(trace.Integrated))

	// 2. Automatic generation of privacy settings (§3): one default module
	// per relation, sensitive columns denied. The user then tightens the
	// ubisense module: positions only as averages per coordinate cell.
	pol := paradise.GeneratePolicy(store.Catalog())
	fmt.Printf("auto-generated policy: %d modules\n", len(pol.Modules))
	ubi, _ := pol.ModuleByID("ubisense")
	fmt.Printf("  ubisense: tag_id allowed=%v (sensitive -> denied by default)\n\n", ubi.Allowed("tag_id"))

	sess, err := paradise.Open(store, paradise.WithPolicy(pol))
	if err != nil {
		log.Fatalf("open session: %v", err)
	}

	// 3. Room-control queries of the intention recognition.
	queries := []struct{ module, sql, what string }{
		{"thermometer", "SELECT sensor_id, AVG(celsius) AS c FROM thermometer GROUP BY sensor_id",
			"climate control"},
		{"ubisense", "SELECT x, y, AVG(z) AS zavg FROM ubisense WHERE valid = TRUE GROUP BY x, y",
			"occupancy map"},
		{"powersocket", "SELECT socket_id, MAX(milliamps) AS peak FROM powersocket GROUP BY socket_id ORDER BY peak DESC LIMIT 3",
			"device activity"},
	}
	for _, q := range queries {
		out, err := sess.Process(ctx, q.sql, paradise.Module(q.module))
		if err != nil {
			log.Fatalf("%s: %v", q.what, err)
		}
		fmt.Printf("== %s ==\n", q.what)
		fmt.Printf("  query    : %s\n", q.sql)
		fmt.Printf("  rewrite  : %s\n", out.RewriteReport.Summary())
		fmt.Printf("  result   : %d rows, egress %d bytes (raw %d, %.0fx less)\n\n",
			len(out.Result.Rows), out.Net.EgressBytes, out.Net.RawBytes, out.Net.Reduction())
	}

	// 4. A query that trips the policy: tracking a specific person. The
	// facade classifies the denial — no string matching needed.
	_, err = sess.Process(ctx, "SELECT tag_id, x, y FROM ubisense WHERE tag_id = 100",
		paradise.Module("ubisense"))
	fmt.Println("== tracking attempt ==")
	fmt.Printf("  SELECT tag_id, x, y FROM ubisense WHERE tag_id = 100\n  -> %v\n", err)
	var v *paradise.PolicyViolation
	if errors.As(err, &v) {
		fmt.Printf("  typed: rule %q, offending attributes %v\n", v.Rule, v.Columns)
	}
}
