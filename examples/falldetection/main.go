// Falldetection plays the paper's use-case story (§4.2): the company
// "Poodle" sells an AAL fall-detection service. Without PArADISE the cloud
// receives the apartment's raw position stream — enough to build a complete
// movement profile. With the PArADISE option the same fall is detected, but
// the cloud only ever sees the aggregated, filtered d′.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	paradise "paradise"
	"paradise/recognition"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A day (scaled down) in the life of the resident — ending in a fall.
	trace, err := sensorsim.Generate(sensorsim.Apartment(90*time.Second, true, 7))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		log.Fatalf("store: %v", err)
	}

	// Poodle's fall-detection query: positions low above the floor.
	// (The service needs positions and times, nothing else.)
	const fallQuery = "SELECT x, y, z, t FROM d WHERE z < 0.6"

	// --- With PArADISE: policy for the FallDetection module. ---
	// The user reveals positions only below 0.6 m (fall posture) and never
	// the identity.
	const fallPolicy = `
<module module_ID="FallDetection">
  <attributeList>
    <attribute name="x"><allow>true</allow></attribute>
    <attribute name="y"><allow>true</allow></attribute>
    <attribute name="z"><allow>true</allow>
      <condition><atomicCondition>z &lt; 0.6</atomicCondition></condition>
    </attribute>
    <attribute name="t"><allow>true</allow></attribute>
  </attributeList>
</module>`
	pol, err := paradise.ParsePolicyBytes([]byte(fallPolicy))
	if err != nil {
		log.Fatalf("policy: %v", err)
	}
	sess, err := paradise.Open(store, paradise.WithPolicy(pol))
	if err != nil {
		log.Fatalf("open session: %v", err)
	}

	// --- Without PArADISE: raw data to the cloud. ---
	naive, err := sess.RunNaive(ctx, fallQuery)
	if err != nil {
		log.Fatalf("naive: %v", err)
	}

	out, err := sess.Process(ctx, fallQuery, paradise.Module("FallDetection"))
	if err != nil {
		log.Fatalf("process: %v", err)
	}

	// Both paths must detect the fall.
	detect := func(res *paradise.Result) int {
		acts, err := recognition.Annotate(res)
		if err != nil {
			// The result lacks entity columns; classify by height alone.
			zi, zerr := res.Schema.Index("z")
			if zerr != nil {
				log.Fatalf("detect: %v", err)
			}
			n := 0
			for _, r := range res.Rows {
				if r[zi].Type().Numeric() && r[zi].AsFloat() < 0.6 {
					n++
				}
			}
			return n
		}
		n := 0
		for _, a := range acts {
			if a == sensorsim.ActivityFall {
				n++
			}
		}
		return n
	}

	fmt.Println("Poodle fall-detection service — one evening, one fall")
	fmt.Println()
	fmt.Printf("%-28s %14s %14s %10s\n", "", "egress bytes", "egress rows", "fall seen")
	fmt.Printf("%-28s %14d %14d %10v\n",
		"without PArADISE (raw d)", naive.EgressBytes, naive.Traffic[len(naive.Traffic)-1].Rows,
		detect(naive.Result) > 0)
	egressRows := out.Net.Traffic[len(out.Net.Traffic)-1].Rows
	fmt.Printf("%-28s %14d %14d %10v\n",
		"with PArADISE (d')", out.Net.EgressBytes, egressRows, detect(out.Result) > 0)
	fmt.Println()
	fmt.Printf("data leaving the apartment shrank %.0fx; the fall is still detected.\n",
		float64(naive.EgressBytes)/float64(max(out.Net.EgressBytes, 1)))
	fmt.Println()
	fmt.Println("fragment placement with PArADISE:")
	for _, a := range out.Net.Assignments {
		fmt.Printf("  Q%d on %-12s  %s\n", a.Fragment.Stage, a.Node.Name, a.Fragment.SQL())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
