// Quickstart runs the paper's §4.2 use case end to end through the public
// facade: the Poodle cloud's activity-recognition pipeline — an R
// Kalman-filter analysis with an embedded SQL query — is checked against
// the Figure 4 privacy policy, rewritten, vertically fragmented across
// sensor → appliance → media center → PC, and executed; only the reduced,
// policy-compliant d′ leaves the apartment.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	paradise "paradise"
	"paradise/recognition"
	"paradise/sensorsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. Simulate the apartment: a resident moving through a daily routine.
	// Positions snap to a 25 cm UbiSense grid so GROUP BY x, y forms real
	// grouping sets (the Figure 4 HAVING safeguard presumes that).
	scenario := sensorsim.Apartment(120*time.Second, false, 2016)
	scenario.PositionGridM = 0.25
	trace, err := sensorsim.Generate(scenario)
	if err != nil {
		log.Fatalf("generate trace: %v", err)
	}
	store, err := sensorsim.BuildStore(trace)
	if err != nil {
		log.Fatalf("build store: %v", err)
	}
	fmt.Printf("apartment database d: %d position samples\n\n", len(trace.Integrated))

	// 2. Open a session with the paper's Figure 4 policy.
	sess, err := paradise.Open(store, paradise.WithPolicy(paradise.Figure4Policy()))
	if err != nil {
		log.Fatalf("open session: %v", err)
	}

	// 3. The provider's analysis pipeline (the paper's R excerpt).
	pipeline, err := recognition.PaperPipeline()
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	fmt.Println("provider analysis:")
	fmt.Println("  " + pipeline.Describe())
	fmt.Println()

	// 4. Process: policy rewrite, vertical fragmentation, chain execution,
	// residual R on the cloud.
	out, err := sess.ProcessPipeline(ctx, pipeline, paradise.Module("ActionFilter"))
	if err != nil {
		log.Fatalf("process: %v", err)
	}

	fmt.Println("== preprocessing (policy rewrite) ==")
	fmt.Printf("rewritten SQL:\n  %s\n", out.RewrittenSQL)
	fmt.Printf("transformations: %s\n\n", out.RewriteReport.Summary())

	fmt.Println("== vertical fragmentation (Figure 3) ==")
	fmt.Print(out.Plan.String())
	fmt.Println()

	fmt.Println("== chain execution ==")
	fmt.Print(out.Net.Summary())
	fmt.Println()

	fmt.Println("== cloud-side residual ==")
	fmt.Printf("  %s\n", out.ResidualR)
	fmt.Printf("  rows flagged as walking: %d (of %d rows in d')\n",
		len(out.Final.Rows), len(out.Result.Rows))
	fmt.Println()
	fmt.Println("note: the strict Figure 4 policy aggregates z per (x, y) cell and only")
	fmt.Println("releases cells with SUM(z) > 100 — i.e. places the resident dwelled at.")
	fmt.Println("The cloud learns dwell cells, not movement paths: high loss for the")
	fmt.Println("unintended profiling, bounded loss for the intended occupancy analysis.")
}
